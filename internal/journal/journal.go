// Package journal is the server's durability substrate: a zero-dependency,
// deterministic write-ahead log plus snapshot store. Every state change
// the localization pipeline accumulates — stored CSI reports, solved
// rounds, session lifecycle — is appended to CRC32C-checksummed segment
// files BEFORE the change is acknowledged to any agent, so a process
// crash loses at most un-acked work, which the wire protocol's
// idempotent re-send path replays anyway.
//
// Three properties shape the design:
//
//   - Byte-stable content. Records carry no timestamps and no map-order
//     dependence: report payloads re-use the wire protocol's own frame
//     encoding, snapshots serialize State in canonical field and sort
//     order, and the injected telemetry.Clock feeds only recovery-duration
//     metrics, never the files. Two identical runs write identical bytes.
//
//   - Torn-tail tolerance. Recovery replays snapshot + segment tail and
//     truncates at the first bad checksum in the final segment — a clean
//     torn tail (the normal crash shape) never fails recovery. Corruption
//     in the committed interior is a typed ErrCorrupt.
//
//   - Crash-point testability. Every append consults an optional
//     CrashHook at named points (before the write, mid-write, after the
//     fsync), which internal/chaos arms to simulate a kill between append
//     and ack; the conformance suite proves recovery converges to the
//     uninterrupted run's exact estimates.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// Crash-point names consulted through Options.CrashHook, in the order an
// append visits them. internal/chaos mirrors these as chaos.CrashPoint
// constants; the string values are the contract.
const (
	PointAppendBefore   = "append:before"   // nothing written yet
	PointAppendTorn     = "append:torn"     // half the record written, then killed
	PointAppendAfter    = "append:after"    // record durable, ack never sent
	PointSnapshotBefore = "snapshot:before" // snapshot not yet written
	PointSnapshotAfter  = "snapshot:after"  // snapshot durable, compact not run
)

// Journal errors.
var (
	// ErrClosed is returned by operations on a closed journal.
	ErrClosed = errors.New("journal: closed")
	// ErrBroken is returned once a previous append failed (or a crash
	// hook fired): the on-disk tail is in an unknown state and the owner
	// must recover through a fresh Open.
	ErrBroken = errors.New("journal: broken by earlier failure")
	// ErrSeqGap is returned by AppendRaw when the record's sequence
	// number is not exactly the next one — replication must deliver a
	// contiguous stream.
	ErrSeqGap = errors.New("journal: raw append out of sequence")
)

// Options parameterizes Open.
type Options struct {
	// Dir is the journal directory, created if absent. Required.
	Dir string
	// Clock feeds the recovery-duration metric. It never influences file
	// bytes. Nil leaves durations zero (and the journal fully
	// deterministic even under telemetry).
	Clock telemetry.Clock
	// Telemetry, when set, receives the nomloc_journal_* instruments.
	Telemetry *telemetry.Registry
	// SegmentMaxBytes rolls the active segment once it would exceed this
	// size. Defaults to 4 MiB.
	SegmentMaxBytes int64
	// NoSync skips fsync after appends and snapshots. Tests only: a real
	// deployment that sets this trades the WAL's durability guarantee
	// away.
	NoSync bool
	// CrashHook, when set, is consulted at the named crash points. A
	// non-nil return simulates a kill at that point: the journal marks
	// itself broken and the operation fails with the returned error.
	// internal/chaos provides deterministic hooks.
	CrashHook func(point string) error
}

// Journal is an open write-ahead log. Create with Open; Open performs
// recovery, so a Journal is always positioned at a consistent tail.
// Methods are safe for concurrent use.
type Journal struct {
	opts    Options
	metrics *journalMetrics

	mu       sync.Mutex
	seg      *os.File // active segment, positioned at its end
	segFirst uint64   // active segment's first record seq
	segSize  int64    // active segment's current byte size
	segCount int      // live segment files (active included)
	nextSeq  uint64   // seq the next append will carry
	state    *State   // state recovered at Open; owned by the caller after State()
	stats    RecoveryStats
	fresh    bool // no records existed at Open
	broken   bool
	closed   bool
}

// Open recovers the journal in opts.Dir (creating it when absent) and
// opens it for appending. The recovered state is available via State,
// recovery statistics via Stats.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: options need a directory")
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	j := &Journal{
		opts:    opts,
		metrics: newJournalMetrics(opts.Telemetry),
	}
	start := j.now()
	// The journal is not shared yet, but recover reaches *Locked helpers,
	// so hold the mutex for the analyzer-visible invariant.
	j.mu.Lock()
	err := j.recoverLocked()
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	j.stats.Duration = j.now().Sub(start)
	j.metrics.recovered(j.stats, j.segCount)
	return j, nil
}

// now reads the injected clock (zero time without one, so durations stay
// zero and never perturb determinism).
func (j *Journal) now() time.Time {
	if j.opts.Clock == nil {
		return time.Time{}
	}
	return j.opts.Clock()
}

// recover loads the newest valid snapshot, replays the segment tail with
// torn-write truncation, and opens the active segment for appending.
func (j *Journal) recoverLocked() error {
	segments, snapshots, err := listDir(j.opts.Dir)
	if err != nil {
		return err
	}

	// Newest snapshot wins; an unreadable newest snapshot falls back to
	// the next older one (its segments may still be present), and a
	// journal with no usable snapshot replays from the beginning.
	st := &State{}
	for i := len(snapshots) - 1; i >= 0; i-- {
		loaded, serr := loadSnapshot(filepath.Join(j.opts.Dir, snapshots[i].name))
		if serr != nil {
			continue
		}
		st = loaded
		break
	}
	j.stats.SnapshotSeq = st.Seq

	// Replay segments in order, skipping records the snapshot covers.
	// Only the final segment may have a torn tail; anything invalid
	// before that is interior corruption.
	wantSeq := st.Seq + 1
	lastIdx := len(segments) - 1
	for i, entry := range segments {
		if i < lastIdx && segments[i+1].seq <= wantSeq {
			// Entire segment is below the snapshot floor (kept only
			// because compaction was interrupted); skip without scanning.
			continue
		}
		sc, serr := scanSegment(j.opts.Dir, entry, st.Seq)
		if serr != nil {
			return serr
		}
		if sc.torn > 0 && i < lastIdx {
			return fmt.Errorf("%w: segment %s has %d invalid bytes before the journal tail",
				ErrCorrupt, entry.name, sc.torn)
		}
		for _, rec := range sc.records {
			if rec.Seq != wantSeq {
				if i == lastIdx {
					// A seq gap at the tail behaves like a torn tail.
					break
				}
				return fmt.Errorf("%w: segment %s jumps to seq %d, want %d",
					ErrCorrupt, entry.name, rec.Seq, wantSeq)
			}
			if aerr := st.Apply(rec); aerr != nil {
				return aerr
			}
			wantSeq++
			j.stats.Records++
		}
		if sc.torn > 0 {
			if terr := os.Truncate(filepath.Join(j.opts.Dir, entry.name), sc.goodSize); terr != nil {
				return fmt.Errorf("journal: truncate torn tail: %w", terr)
			}
			j.stats.TruncatedBytes += sc.torn
		}
	}

	j.state = st
	j.nextSeq = wantSeq
	j.stats.LastSeq = wantSeq - 1
	j.fresh = wantSeq == 1

	// Open the active segment: the last listed one when it is usable,
	// otherwise a fresh segment starting at the next sequence.
	if len(segments) > 0 {
		last := segments[lastIdx]
		path := filepath.Join(j.opts.Dir, last.name)
		if info, ierr := os.Stat(path); ierr == nil && info.Size() >= segmentHeaderSize && last.seq <= wantSeq {
			f, oerr := os.OpenFile(path, os.O_RDWR, 0o644)
			if oerr != nil {
				return fmt.Errorf("journal: open segment: %w", oerr)
			}
			size, serr := f.Seek(0, 2)
			if serr != nil {
				cerr := f.Close()
				return fmt.Errorf("journal: seek segment: %w", errors.Join(serr, cerr))
			}
			j.seg = f
			j.segFirst = last.seq
			j.segSize = size
			j.segCount = len(segments)
			j.stats.Segments = j.segCount
			return nil
		}
		// The last segment is unusable (torn header): replace it.
		if rerr := os.Remove(path); rerr != nil {
			return fmt.Errorf("journal: remove torn segment: %w", rerr)
		}
		segments = segments[:lastIdx]
	}
	j.segCount = len(segments)
	if err := j.createSegmentLocked(); err != nil {
		return err
	}
	j.stats.Segments = j.segCount
	return nil
}

// createSegmentLocked creates and syncs a fresh segment for nextSeq and
// installs it as the active segment.
func (j *Journal) createSegmentLocked() error {
	path := segmentPath(j.opts.Dir, j.nextSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create segment: %w", err)
	}
	hdr := encodeSegmentHeader(j.nextSeq)
	if _, werr := f.Write(hdr); werr != nil {
		cerr := f.Close()
		return fmt.Errorf("journal: write segment header: %w", errors.Join(werr, cerr))
	}
	if !j.opts.NoSync {
		if serr := f.Sync(); serr != nil {
			cerr := f.Close()
			return fmt.Errorf("journal: sync segment header: %w", errors.Join(serr, cerr))
		}
		if derr := syncDir(j.opts.Dir); derr != nil {
			cerr := f.Close()
			return errors.Join(derr, cerr)
		}
		j.metrics.fsync(2)
	}
	j.seg = f
	j.segFirst = j.nextSeq
	j.segSize = segmentHeaderSize
	j.segCount++
	j.metrics.segments(j.segCount)
	return nil
}

// State returns the state recovered at Open. The caller takes ownership:
// the journal never reads or mutates it after Open.
func (j *Journal) State() *State { return j.state }

// Stats returns the recovery statistics of the Open that produced j.
func (j *Journal) Stats() RecoveryStats { return j.stats }

// Fresh reports whether the journal contained no records at Open — the
// owner writes the meta record exactly once, on a fresh journal.
func (j *Journal) Fresh() bool { return j.fresh }

// Broken reports whether an earlier failure (or crash hook) left the
// on-disk tail in an unknown state. A broken journal refuses all writes;
// the owner must halt and recover through a fresh Open.
func (j *Journal) Broken() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.broken
}

// LastSeq returns the sequence number of the most recently appended (or
// recovered) record.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// hook consults the crash hook for one named point. A non-nil result
// marks the journal broken: the simulated process is dead.
func (j *Journal) hookLocked(point string) error {
	if j.opts.CrashHook == nil {
		return nil
	}
	if err := j.opts.CrashHook(point); err != nil {
		j.broken = true
		return fmt.Errorf("journal: crash at %s: %w", point, err)
	}
	return nil
}

// append encodes and durably writes one record, rolling the segment when
// full. It is the single write path every Append* method funnels into.
func (j *Journal) append(kind Kind, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.closed:
		return ErrClosed
	case j.broken:
		return ErrBroken
	}
	return j.appendLocked(Record{Seq: j.nextSeq, Kind: kind, Payload: payload})
}

// AppendRaw durably writes one already-sequenced record — the standby's
// write path for replicated records, which must keep the primary's
// sequence numbers so the two journals stay byte-interchangeable.
// rec.Seq must be exactly LastSeq+1; a gap or overlap is ErrSeqGap.
func (j *Journal) AppendRaw(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.closed:
		return ErrClosed
	case j.broken:
		return ErrBroken
	}
	if rec.Seq != j.nextSeq {
		return fmt.Errorf("%w: got seq %d, want %d", ErrSeqGap, rec.Seq, j.nextSeq)
	}
	return j.appendLocked(rec)
}

// appendLocked is the shared durable-write core: encode, roll when full,
// write, fsync, then advance nextSeq. rec.Seq must equal j.nextSeq.
func (j *Journal) appendLocked(rec Record) error {
	if err := j.hookLocked(PointAppendBefore); err != nil {
		return err
	}
	buf := appendRecord(nil, rec)
	if len(buf) > maxRecordBytes {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(buf))
	}
	if j.segSize+int64(len(buf)) > j.opts.SegmentMaxBytes && j.segSize > segmentHeaderSize {
		if err := j.rollLocked(); err != nil {
			j.broken = true
			return err
		}
	}
	if err := j.hookLocked(PointAppendTorn); err != nil {
		// Simulate the kill mid-write: half the record reaches the disk.
		if _, werr := j.seg.Write(buf[:len(buf)/2]); werr == nil && !j.opts.NoSync {
			_ = j.seg.Sync() //nomloc:errdrop-ok simulating a crash; the torn bytes' durability is best-effort by definition
		}
		return err
	}
	if _, err := j.seg.Write(buf); err != nil {
		j.broken = true
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.seg.Sync(); err != nil {
			j.broken = true
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.metrics.fsync(1)
	}
	j.segSize += int64(len(buf))
	j.nextSeq++
	j.metrics.appended(rec.Kind, len(buf))
	if err := j.hookLocked(PointAppendAfter); err != nil {
		return err
	}
	return nil
}

// rollLocked closes the active segment and starts the next one.
func (j *Journal) rollLocked() error {
	if !j.opts.NoSync {
		if err := j.seg.Sync(); err != nil {
			return fmt.Errorf("journal: sync before roll: %w", err)
		}
		j.metrics.fsync(1)
	}
	if err := j.seg.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	j.seg = nil
	return j.createSegmentLocked()
}

// AppendMeta writes the journal's meta record. The owner calls it exactly
// once, immediately after opening a Fresh journal.
func (j *Journal) AppendMeta(m Meta) error {
	m.FormatVersion = FormatVersion
	payload, err := jsonPayload(m)
	if err != nil {
		return err
	}
	return j.append(KindMeta, payload)
}

// AppendSessionOpen records one agent session registering.
func (j *Journal) AppendSessionOpen(role wire.Role, id string) error {
	payload, err := jsonPayload(SessionEvent{Role: role, ID: id})
	if err != nil {
		return err
	}
	return j.append(KindSessionOpen, payload)
}

// AppendSessionClose records one agent session ending.
func (j *Journal) AppendSessionClose(role wire.Role, id string) error {
	payload, err := jsonPayload(SessionEvent{Role: role, ID: id})
	if err != nil {
		return err
	}
	return j.append(KindSessionClose, payload)
}

// AppendReport records one stored CSI report for objectID. The server
// calls this BEFORE acknowledging the report — the WAL contract.
func (j *Journal) AppendReport(objectID string, rep *wire.CSIReport) error {
	payload, err := encodeReportPayload(objectID, rep)
	if err != nil {
		return err
	}
	return j.append(KindReport, payload)
}

// AppendRoundSolved records one successful round solve BEFORE its
// estimate is broadcast.
func (j *Journal) AppendRoundSolved(rs RoundSolved) error {
	payload, err := jsonPayload(rs)
	if err != nil {
		return err
	}
	return j.append(KindRoundSolved, payload)
}

// jsonPayload marshals a record payload.
func jsonPayload(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal payload: %w", err)
	}
	return payload, nil
}

// Snapshot durably writes st as a snapshot file tagged with st.Seq. The
// caller captures st under the same lock discipline as its appends so
// st.Seq names a consistent prefix; pass LastSeq for st.Seq when
// building the state by hand.
func (j *Journal) Snapshot(st *State) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.closed:
		return ErrClosed
	case j.broken:
		return ErrBroken
	}
	if err := j.hookLocked(PointSnapshotBefore); err != nil {
		return err
	}
	img, err := encodeSnapshot(st)
	if err != nil {
		return err
	}
	// Write-temp-then-rename so a crash mid-snapshot leaves either no
	// snapshot or a complete one, never a half-written newest snapshot
	// (recovery would skip it via the CRC anyway; the rename just keeps
	// the directory tidy under fuzzing).
	final := filepath.Join(j.opts.Dir, snapshotName(st.Seq))
	tmp := final + ".tmp"
	if werr := writeFileSync(tmp, img, !j.opts.NoSync); werr != nil {
		return werr
	}
	if rerr := os.Rename(tmp, final); rerr != nil {
		return fmt.Errorf("journal: publish snapshot: %w", rerr)
	}
	if !j.opts.NoSync {
		if derr := syncDir(j.opts.Dir); derr != nil {
			return derr
		}
		j.metrics.fsync(2)
	}
	j.metrics.snapshot(len(img))
	if err := j.hookLocked(PointSnapshotAfter); err != nil {
		return err
	}
	return nil
}

// Compact removes snapshot-covered files: every segment whose records all
// fall at or below the newest snapshot's sequence (the active segment is
// never removed) and every snapshot older than the newest valid one. Safe
// to call at any time; a crash mid-compact only leaves extra files for
// the next Compact.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	segments, snapshots, err := listDir(j.opts.Dir)
	if err != nil {
		return err
	}
	if len(snapshots) == 0 {
		return nil
	}
	cover := snapshots[len(snapshots)-1].seq
	removed := false
	for i, entry := range segments {
		// A segment's records end where the next segment begins; the
		// last (active) segment always stays.
		if i+1 >= len(segments) || segments[i+1].seq > cover+1 || entry.seq == j.segFirst {
			continue
		}
		if rerr := os.Remove(filepath.Join(j.opts.Dir, entry.name)); rerr != nil {
			return fmt.Errorf("journal: compact segment: %w", rerr)
		}
		j.segCount--
		removed = true
	}
	for _, entry := range snapshots[:len(snapshots)-1] {
		if rerr := os.Remove(filepath.Join(j.opts.Dir, entry.name)); rerr != nil {
			return fmt.Errorf("journal: compact snapshot: %w", rerr)
		}
		removed = true
	}
	if removed && !j.opts.NoSync {
		if derr := syncDir(j.opts.Dir); derr != nil {
			return derr
		}
		j.metrics.fsync(1)
	}
	j.metrics.segments(j.segCount)
	return nil
}

// Close flushes and closes the active segment. Further operations return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.closed = true
	if j.seg == nil {
		return nil
	}
	var serr error
	if !j.opts.NoSync && !j.broken {
		serr = j.seg.Sync()
		if serr == nil {
			j.metrics.fsync(1)
		}
	}
	cerr := j.seg.Close()
	j.seg = nil
	if serr != nil {
		return fmt.Errorf("journal: close: %w", errors.Join(serr, cerr))
	}
	if cerr != nil {
		return fmt.Errorf("journal: close: %w", cerr)
	}
	return nil
}

// writeFileSync writes data to path, fsyncing before close when sync is
// set.
func writeFileSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create %s: %w", filepath.Base(path), err)
	}
	if _, werr := f.Write(data); werr != nil {
		cerr := f.Close()
		return fmt.Errorf("journal: write %s: %w", filepath.Base(path), errors.Join(werr, cerr))
	}
	if sync {
		if serr := f.Sync(); serr != nil {
			cerr := f.Close()
			return fmt.Errorf("journal: sync %s: %w", filepath.Base(path), errors.Join(serr, cerr))
		}
	}
	if cerr := f.Close(); cerr != nil {
		return fmt.Errorf("journal: close %s: %w", filepath.Base(path), cerr)
	}
	return nil
}
