package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

// Kind discriminates journal record types.
type Kind uint8

// Record kinds. The numeric values are part of the on-disk format and
// must never be reused for a different meaning.
const (
	// KindMeta is the first record of a fresh journal: the server
	// configuration replay needs (localization area, history bounds).
	KindMeta Kind = 1
	// KindSessionOpen / KindSessionClose bracket one agent session.
	KindSessionOpen  Kind = 2
	KindSessionClose Kind = 3
	// KindReport carries one stored CSI report, encoded as a wire frame
	// (wire.WriteMessage bytes), so the journal re-uses the protocol
	// encoding byte for byte.
	KindReport Kind = 4
	// KindRoundSolved records one successful round solve: the broadcast
	// estimate plus the identities of the reports that entered the solve.
	KindRoundSolved Kind = 5
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindMeta:
		return "meta"
	case KindSessionOpen:
		return "session_open"
	case KindSessionClose:
		return "session_close"
	case KindReport:
		return "report"
	case KindRoundSolved:
		return "round_solved"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one decoded journal entry.
type Record struct {
	// Seq is the record's global sequence number (1-based, contiguous).
	Seq uint64
	// Kind tags the payload.
	Kind Kind
	// Payload is the kind-specific body.
	Payload []byte
}

// Meta is the KindMeta payload: everything a replay needs to rebuild the
// solve pipeline. Field order is fixed; the payload is canonical by
// construction (encoding/json preserves struct field order).
type Meta struct {
	// FormatVersion is the journal format version that wrote the record.
	FormatVersion uint32 `json:"formatVersion"`
	// ServerID names the server instance that owns the journal.
	ServerID string `json:"serverId"`
	// AreaVertices are the localization area polygon's vertices in order.
	AreaVertices []geom.Vec `json:"areaVertices"`
	// MaxNomadicSites is the per-(object, nomadic AP) history bound.
	MaxNomadicSites int `json:"maxNomadicSites"`
}

// SessionEvent is the KindSessionOpen / KindSessionClose payload.
type SessionEvent struct {
	// Role is the agent kind.
	Role wire.Role `json:"role"`
	// ID is the agent identity.
	ID string `json:"id"`
}

// AnchorRef names one stored report by identity: exactly the key the
// server's history keeps reports under.
type AnchorRef struct {
	// APID is the reporting AP.
	APID string `json:"apId"`
	// SiteIndex is the capture site (0 for static APs).
	SiteIndex int `json:"siteIndex"`
	// RoundID is the round the report was captured in.
	RoundID uint64 `json:"roundId"`
}

// RoundSolved is the KindRoundSolved payload: the estimate the server
// broadcast and the exact report set that produced it, in canonical solve
// order, so a replay can re-run the solve bit-for-bit even when later
// reports have since replaced those history entries.
type RoundSolved struct {
	// Estimate is the broadcast result.
	Estimate wire.Estimate `json:"estimate"`
	// Anchors identify the solve's inputs in canonical order.
	Anchors []AnchorRef `json:"anchors"`
}

// Journal format errors.
var (
	// ErrCorrupt marks a journal whose committed interior (anything
	// before the final segment's tail) fails validation. A clean torn
	// tail is NOT corruption; recovery truncates it silently.
	ErrCorrupt = errors.New("journal: corrupt")
	// ErrNoMeta marks a journal with records but no meta record, so a
	// replay cannot rebuild the solve pipeline.
	ErrNoMeta = errors.New("journal: no meta record")
	// ErrRecordTooLarge guards the record length prefix.
	ErrRecordTooLarge = errors.New("journal: record exceeds limit")
)

// maxRecordBytes bounds one record (headroom over wire.MaxFrameBytes for
// the journal's own framing).
const maxRecordBytes = wire.MaxFrameBytes + 1<<20

// castagnoli is the CRC32C table every checksum in the format uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordHeaderSize is the fixed per-record prefix: length (4) + CRC32C (4).
const recordHeaderSize = 8

// appendRecord encodes rec onto dst:
//
//	[len u32][crc32c u32][seq u64][kind u8][payload ...]
//
// len counts the body (seq + kind + payload); the CRC covers the body, so
// a corrupted length shows up as a CRC mismatch at whatever body the bad
// length delimits.
func appendRecord(dst []byte, rec Record) []byte {
	bodyLen := 8 + 1 + len(rec.Payload)
	var scratch [9]byte
	binary.BigEndian.PutUint64(scratch[:8], rec.Seq)
	scratch[8] = byte(rec.Kind)
	crc := crc32.Update(0, castagnoli, scratch[:])
	crc = crc32.Update(crc, castagnoli, rec.Payload)

	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(bodyLen))
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, scratch[:]...)
	return append(dst, rec.Payload...)
}

// parseRecord decodes one record from the front of buf. It returns the
// record and the bytes consumed. ok is false when buf holds no complete,
// checksum-valid record — the torn-tail condition recovery truncates at.
func parseRecord(buf []byte) (rec Record, n int, ok bool) {
	if len(buf) < recordHeaderSize {
		return Record{}, 0, false
	}
	bodyLen := int(binary.BigEndian.Uint32(buf[:4]))
	if bodyLen < 9 || bodyLen > maxRecordBytes {
		return Record{}, 0, false
	}
	total := recordHeaderSize + bodyLen
	if len(buf) < total {
		return Record{}, 0, false
	}
	wantCRC := binary.BigEndian.Uint32(buf[4:8])
	body := buf[recordHeaderSize:total]
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return Record{}, 0, false
	}
	rec = Record{
		Seq:     binary.BigEndian.Uint64(body[:8]),
		Kind:    Kind(body[8]),
		Payload: append([]byte(nil), body[9:]...),
	}
	return rec, total, true
}

// encodeReportPayload renders a KindReport payload: the owning object's
// ID (the association the wire frame itself does not carry — it comes
// from the round) followed by the report as a wire frame:
//
//	[objLen u16][objectID ...][wire frame ...]
func encodeReportPayload(objectID string, rep *wire.CSIReport) ([]byte, error) {
	if len(objectID) > 1<<16-1 {
		return nil, fmt.Errorf("journal: object id %d bytes long", len(objectID))
	}
	var buf bytes.Buffer
	var pre [2]byte
	binary.BigEndian.PutUint16(pre[:], uint16(len(objectID)))
	buf.Write(pre[:])
	buf.WriteString(objectID)
	if err := wire.WriteMessage(&buf, rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeReportPayload decodes a KindReport payload back into the owning
// object ID and the report.
func decodeReportPayload(payload []byte) (string, *wire.CSIReport, error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("%w: report payload too short", ErrCorrupt)
	}
	objLen := int(binary.BigEndian.Uint16(payload[:2]))
	if len(payload) < 2+objLen {
		return "", nil, fmt.Errorf("%w: report payload object id truncated", ErrCorrupt)
	}
	objectID := string(payload[2 : 2+objLen])
	msg, err := wire.DecodeMessage(payload[2+objLen:])
	if err != nil {
		return "", nil, fmt.Errorf("%w: report payload: %v", ErrCorrupt, err)
	}
	rep, ok := msg.(*wire.CSIReport)
	if !ok {
		return "", nil, fmt.Errorf("%w: report payload holds %q", ErrCorrupt, msg.Type())
	}
	return objectID, rep, nil
}

// decodeJSON decodes a JSON payload into out with a typed corruption error.
func decodeJSON(payload []byte, out any, what string) error {
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrCorrupt, what, err)
	}
	return nil
}
