package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/nomloc/nomloc/internal/wire"
)

// drainTail reads every available record from t, failing on iteration
// errors.
func drainTail(t *testing.T, tail *Tail) []Record {
	t.Helper()
	var out []Record
	for {
		rec, done, err := tail.Next()
		if err != nil {
			t.Fatalf("tail next: %v", err)
		}
		if done {
			return out
		}
		out = append(out, rec)
	}
}

// TestTailReadsExistingRecords pins the basic contract: a Tail opened at
// zero replays every appended record in order, then reports caught-up
// without blocking, and resumes when more records arrive.
func TestTailReadsExistingRecords(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir)
	defer j.Close()
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.AppendSessionOpen(wire.RoleAP, "ap"); err != nil {
			t.Fatal(err)
		}
	}

	tail, err := j.Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	recs := drainTail(t, tail)
	if len(recs) != 6 {
		t.Fatalf("tail returned %d records, want 6", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if tail.Seq() != 6 {
		t.Fatalf("tail cursor %d, want 6", tail.Seq())
	}

	// Caught up: another Next is done, not an error.
	if _, done, nerr := tail.Next(); nerr != nil || !done {
		t.Fatalf("caught-up Next: done=%v err=%v", done, nerr)
	}

	// New appends become visible to the same Tail.
	if err := j.AppendSessionClose(wire.RoleAP, "ap"); err != nil {
		t.Fatal(err)
	}
	more := drainTail(t, tail)
	if len(more) != 1 || more[0].Seq != 7 || more[0].Kind != KindSessionClose {
		t.Fatalf("follow-up read: %+v", more)
	}
}

// TestTailBoundsAndResume pins cursor semantics: afterSeq skips the
// prefix, a cursor at the tail sees nothing, and a cursor below the
// oldest surviving segment is a typed ErrTailGap.
func TestTailBoundsAndResume(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir)
	defer j.Close()
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.AppendReport("obj", testReport(uint64(i+1), "ap1", 0, false, testMeta().AreaVertices[0])); err != nil {
			t.Fatal(err)
		}
	}

	tail, err := j.Tail(3)
	if err != nil {
		t.Fatal(err)
	}
	recs := drainTail(t, tail)
	tail.Close()
	if len(recs) != 2 || recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Fatalf("afterSeq=3 returned %+v", recs)
	}

	tail, err = j.Tail(j.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if recs := drainTail(t, tail); len(recs) != 0 {
		t.Fatalf("cursor at tail returned %d records", len(recs))
	}
	tail.Close()

	// Compact the covered prefix away, then ask for it.
	st := &State{Seq: j.LastSeq()}
	if err := j.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	// Roll into a fresh segment so the old one is compactable.
	for i := 0; i < 2; i++ {
		if err := j.AppendSessionOpen(wire.RoleAP, "ap"); err != nil {
			t.Fatal(err)
		}
	}
	forceRoll(t, j)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	segments, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segments[0].seq <= 1 {
		t.Skip("compaction kept the first segment; gap not constructible")
	}
	tail, err = j.Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, _, err := tail.Next(); !errors.Is(err, ErrTailGap) {
		t.Fatalf("compacted prefix read: %v, want ErrTailGap", err)
	}
}

// forceRoll appends large records until the journal rolls into a new
// segment.
func forceRoll(t *testing.T, j *Journal) {
	t.Helper()
	segments, _, err := listDir(j.opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	before := len(segments)
	payload := make([]byte, 1<<18)
	for i := 0; i < 64; i++ {
		if err := j.append(KindSessionOpen, payload); err != nil {
			t.Fatal(err)
		}
		segments, _, err = listDir(j.opts.Dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(segments) > before {
			return
		}
	}
	t.Fatal("journal never rolled")
}

// TestTailFollowsAcrossSegmentRoll pins that a Tail crosses segment
// boundaries transparently, including boundaries created while the Tail
// is already caught up.
func TestTailFollowsAcrossSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, NoSync: true, SegmentMaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}

	tail, terr := j.Tail(0)
	if terr != nil {
		t.Fatal(terr)
	}
	defer tail.Close()
	var got []Record
	payload := make([]byte, 512)
	for i := 0; i < 40; i++ {
		if err := j.append(KindSessionOpen, payload); err != nil {
			t.Fatal(err)
		}
		got = append(got, drainTail(t, tail)...)
	}
	// +1 for the meta record.
	if len(got) != 41 {
		t.Fatalf("tail returned %d records, want 41", len(got))
	}
	for i, rec := range got {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	segments, _, lerr := listDir(dir)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if len(segments) < 2 {
		t.Fatalf("test never rolled segments (%d)", len(segments))
	}
}

// TestTailConcurrentAppend hammers a Tail from one goroutine while the
// journal appends from another: every record must arrive exactly once,
// in order, with no read ever surfacing past the fsync floor.
func TestTailConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, NoSync: true, SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}

	const total = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload := make([]byte, 128)
		for i := 0; i < total; i++ {
			if aerr := j.append(KindSessionOpen, payload); aerr != nil {
				t.Errorf("append %d: %v", i, aerr)
				return
			}
		}
	}()

	tail, terr := j.Tail(0)
	if terr != nil {
		t.Fatal(terr)
	}
	defer tail.Close()
	want := uint64(1)
	for want <= total+1 {
		rec, done, nerr := tail.Next()
		if nerr != nil {
			t.Fatalf("tail next at seq %d: %v", want, nerr)
		}
		if done {
			// Caught up with the writer; the limit guarantees nothing
			// beyond the fsync floor was surfaced.
			if floor := j.LastSeq(); tail.Seq() > floor {
				t.Fatalf("tail cursor %d beyond fsync floor %d", tail.Seq(), floor)
			}
			continue
		}
		if rec.Seq != want {
			t.Fatalf("tail read seq %d, want %d", rec.Seq, want)
		}
		want++
	}
	wg.Wait()
}

// TestTailStopsAtFsyncPoint is the regression test for the durability
// boundary: bytes written into the live segment but not yet committed by
// a successful fsync (here: a torn half-record from a crash hook) must
// never surface from a Tail, even though they are present in the file.
func TestTailStopsAtFsyncPoint(t *testing.T) {
	dir := t.TempDir()
	crash := errors.New("simulated crash")
	armed := false
	j, err := Open(Options{
		Dir:    dir,
		NoSync: true,
		CrashHook: func(point string) error {
			if armed && point == PointAppendTorn {
				return crash
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSessionOpen(wire.RoleAP, "ap"); err != nil {
		t.Fatal(err)
	}
	durable := j.LastSeq()

	// A torn append: half the record's bytes land in the live segment,
	// the fsync never happens, and the journal marks itself broken.
	armed = true
	if err := j.AppendSessionOpen(wire.RoleAP, "ap"); !errors.Is(err, crash) {
		t.Fatalf("armed append: %v", err)
	}
	if !j.Broken() {
		t.Fatal("journal not broken after torn append")
	}

	tail, terr := j.Tail(0)
	if terr != nil {
		t.Fatal(terr)
	}
	defer tail.Close()
	recs := drainTail(t, tail)
	if uint64(len(recs)) != durable {
		t.Fatalf("tail surfaced %d records, want %d (fsync floor)", len(recs), durable)
	}
	if tail.Seq() != durable {
		t.Fatalf("tail cursor %d beyond fsync floor %d", tail.Seq(), durable)
	}
}

// TestTailDirTornTail pins TailDir's post-mortem semantics: reading a
// dead journal's directory stops cleanly at the torn tail — the same
// boundary recovery truncates at — instead of erroring or surfacing
// garbage.
func TestTailDirTornTail(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir)
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendSessionOpen(wire.RoleAP, "ap"); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail by hand: append garbage to the last segment.
	segments, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, segments[len(segments)-1].name)
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x20, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tail, terr := TailDir(dir, 0)
	if terr != nil {
		t.Fatal(terr)
	}
	defer tail.Close()
	recs := drainTail(t, tail)
	if len(recs) != 4 {
		t.Fatalf("post-mortem drain returned %d records, want 4", len(recs))
	}
	if recs[len(recs)-1].Seq != 4 {
		t.Fatalf("last drained seq %d, want 4", recs[len(recs)-1].Seq)
	}
}

// TestAppendRawContiguity pins AppendRaw's contract: primary sequence
// numbers are preserved, a gap or duplicate is a typed ErrSeqGap, and a
// journal recovered from raw appends matches one built by the owner.
func TestAppendRawContiguity(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := openTest(t, srcDir)
	if err := src.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}
	if err := src.AppendReport("obj", testReport(1, "ap1", 0, false, testMeta().AreaVertices[0])); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	tail, err := TailDir(srcDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	dst := openTest(t, dstDir)
	defer dst.Close()
	var recs []Record
	for {
		rec, done, nerr := tail.Next()
		if nerr != nil {
			t.Fatal(nerr)
		}
		if done {
			break
		}
		recs = append(recs, rec)
		if aerr := dst.AppendRaw(rec); aerr != nil {
			t.Fatalf("raw append seq %d: %v", rec.Seq, aerr)
		}
	}
	if dst.LastSeq() != src.LastSeq() {
		t.Fatalf("replica tail seq %d, source %d", dst.LastSeq(), src.LastSeq())
	}

	// A duplicate and a gap both fail typed.
	if err := dst.AppendRaw(recs[0]); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("duplicate raw append: %v", err)
	}
	gap := recs[len(recs)-1]
	gap.Seq += 2
	if err := dst.AppendRaw(gap); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gapped raw append: %v", err)
	}

	// The replicated directory recovers to the same state bytes.
	srcState, _, err := ReadState(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	dstState, _, err := ReadState(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(srcState)
	b, _ := json.Marshal(dstState)
	if !bytes.Equal(a, b) {
		t.Fatalf("replicated state diverged:\n%s\n%s", a, b)
	}
}
