package journal

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

// SolveReports converts a canonical-order report set into anchors and
// runs the SP localization pipeline. The server's live solve path and the
// journal replayer share this single implementation, so a replay
// re-executes solves bit-for-bit — any drift would be a diff, not a
// silent divergence.
//
//nomloc:effect(globalread)
func SolveReports(loc *core.Localizer, reports []*wire.CSIReport) (*core.Estimate, error) {
	anchors := make([]core.Anchor, 0, len(reports))
	for _, rep := range reports {
		est, err := core.EstimatePDP(&rep.Batch)
		if err != nil {
			return nil, fmt.Errorf("pdp for %s#%d: %w", rep.APID, rep.SiteIndex, err)
		}
		kind := core.StaticAP
		if rep.Nomadic {
			kind = core.NomadicSite
		}
		anchors = append(anchors, core.Anchor{
			APID:      rep.APID,
			SiteIndex: rep.SiteIndex,
			Kind:      kind,
			Pos:       rep.Pos,
			PDP:       est.Power,
		})
	}
	return loc.Locate(anchors)
}

// Diff is one disagreement between a recorded estimate and its re-solved
// counterpart. Float fields compare bit-exactly (math.Float64bits): the
// replay contract is byte determinism, not tolerance.
type Diff struct {
	// RoundID / ObjectID identify the estimate.
	RoundID  uint64 `json:"roundId"`
	ObjectID string `json:"objectId"`
	// Field names the disagreeing field (pos.x, pos.y, relaxCost,
	// numAnchors, solveError).
	Field string `json:"field"`
	// Recorded / Replayed render both sides for the report.
	Recorded string `json:"recorded"`
	Replayed string `json:"replayed"`
}

// VerifyResult summarizes one verification pass over a journal.
type VerifyResult struct {
	// Meta is the journal's meta record.
	Meta Meta `json:"meta"`
	// Records counts every record scanned from segments.
	Records int `json:"records"`
	// Rounds counts the round-solved records seen (snapshot-covered
	// estimates excluded).
	Rounds int `json:"rounds"`
	// Resolved counts rounds that were re-solved and compared.
	Resolved int `json:"resolved"`
	// Skipped counts rounds whose anchor reports were compacted away and
	// could not be re-solved, plus estimates only present in a snapshot.
	Skipped int `json:"skipped"`
	// TornBytes counts trailing bytes past the last valid record — a
	// clean crash artifact, reported but not an error.
	TornBytes int64 `json:"tornBytes"`
	// Diffs are the disagreements; an empty slice is a clean journal.
	Diffs []Diff `json:"diffs"`
}

// Clean reports whether the verification found zero diffs.
func (vr *VerifyResult) Clean() bool { return len(vr.Diffs) == 0 }

// anchorKey identifies one stored report version: the identity the
// server's history keeps reports under, pinned to the capture round so a
// later site revisit never shadows the version an earlier solve used.
type anchorKey struct {
	objectID  string
	apID      string
	siteIndex int
	roundID   uint64
}

// Verify re-reads a journal directory without modifying it, re-solves
// every round-solved record whose anchor reports are still present, and
// diffs the results against the recorded estimates bit-exactly. A clean
// torn tail is tolerated (reported via TornBytes); interior corruption
// returns ErrCorrupt.
//
//nomloc:effect(globalread,io)
func Verify(dir string) (*VerifyResult, error) {
	segments, snapshots, err := listDir(dir)
	if err != nil {
		return nil, err
	}
	vr := &VerifyResult{Diffs: []Diff{}}

	// Seed the anchor index (and meta) from the newest valid snapshot:
	// after compaction it is the only source for reports older than the
	// surviving segments.
	index := make(map[anchorKey]*wire.CSIReport)
	for i := len(snapshots) - 1; i >= 0; i-- {
		st, serr := loadSnapshot(filepath.Join(dir, snapshots[i].name))
		if serr != nil {
			continue
		}
		vr.Meta = st.Meta
		vr.Skipped += len(st.Estimates)
		for _, oh := range st.History {
			for _, rep := range oh.Reports {
				index[anchorKey{oh.ObjectID, rep.APID, rep.SiteIndex, rep.RoundID}] = rep
			}
		}
		break
	}

	// Scan every surviving segment from its first record; only the final
	// segment may carry a torn tail.
	var loc *core.Localizer
	var wantSeq uint64
	for i, entry := range segments {
		sc, serr := scanSegment(dir, entry, 0)
		if serr != nil {
			return nil, serr
		}
		if sc.torn > 0 && i < len(segments)-1 {
			return nil, fmt.Errorf("%w: segment %s has %d invalid bytes before the journal tail",
				ErrCorrupt, entry.name, sc.torn)
		}
		vr.TornBytes += sc.torn
		if wantSeq == 0 {
			wantSeq = entry.seq
		}
		for _, rec := range sc.records {
			if rec.Seq != wantSeq {
				if i == len(segments)-1 {
					break
				}
				return nil, fmt.Errorf("%w: segment %s jumps to seq %d, want %d",
					ErrCorrupt, entry.name, rec.Seq, wantSeq)
			}
			wantSeq++
			vr.Records++
			switch rec.Kind {
			case KindMeta:
				if derr := decodeJSON(rec.Payload, &vr.Meta, "meta"); derr != nil {
					return nil, derr
				}
			case KindSessionOpen, KindSessionClose:
				var ev SessionEvent
				if derr := decodeJSON(rec.Payload, &ev, "session"); derr != nil {
					return nil, derr
				}
			case KindReport:
				objectID, rep, derr := decodeReportPayload(rec.Payload)
				if derr != nil {
					return nil, derr
				}
				index[anchorKey{objectID, rep.APID, rep.SiteIndex, rep.RoundID}] = rep
			case KindRoundSolved:
				var rs RoundSolved
				if derr := decodeJSON(rec.Payload, &rs, "round_solved"); derr != nil {
					return nil, derr
				}
				vr.Rounds++
				if loc == nil {
					loc, err = localizerFromMeta(vr.Meta)
					if err != nil {
						return nil, err
					}
				}
				verifyRound(vr, loc, index, rs)
			default:
				return nil, fmt.Errorf("%w: unknown record kind %d at seq %d", ErrCorrupt, rec.Kind, rec.Seq)
			}
		}
	}
	if vr.Records > 0 && len(vr.Meta.AreaVertices) == 0 {
		return nil, ErrNoMeta
	}
	return vr, nil
}

// localizerFromMeta rebuilds the solve pipeline a journal's solves ran on.
func localizerFromMeta(m Meta) (*core.Localizer, error) {
	if len(m.AreaVertices) < 3 {
		return nil, ErrNoMeta
	}
	area, err := geom.NewPolygon(m.AreaVertices)
	if err != nil {
		return nil, fmt.Errorf("journal: meta area: %w", err)
	}
	loc, err := core.New(core.Config{Area: area})
	if err != nil {
		return nil, fmt.Errorf("journal: rebuild localizer: %w", err)
	}
	return loc, nil
}

// verifyRound re-solves one recorded round and appends any disagreements
// to vr.Diffs.
func verifyRound(vr *VerifyResult, loc *core.Localizer, index map[anchorKey]*wire.CSIReport, rs RoundSolved) {
	reports := make([]*wire.CSIReport, 0, len(rs.Anchors))
	for _, a := range rs.Anchors {
		rep, ok := index[anchorKey{rs.Estimate.ObjectID, a.APID, a.SiteIndex, a.RoundID}]
		if !ok {
			// The anchor's report bytes were compacted away; this round
			// predates the surviving tail and cannot be re-solved.
			vr.Skipped++
			return
		}
		reports = append(reports, rep)
	}
	vr.Resolved++
	diff := func(field, recorded, replayed string) {
		vr.Diffs = append(vr.Diffs, Diff{
			RoundID:  rs.Estimate.RoundID,
			ObjectID: rs.Estimate.ObjectID,
			Field:    field,
			Recorded: recorded,
			Replayed: replayed,
		})
	}
	est, err := SolveReports(loc, reports)
	if err != nil {
		diff("solveError", "success", err.Error())
		return
	}
	if math.Float64bits(est.Position.X) != math.Float64bits(rs.Estimate.Pos.X) {
		diff("pos.x", formatFloat(rs.Estimate.Pos.X), formatFloat(est.Position.X))
	}
	if math.Float64bits(est.Position.Y) != math.Float64bits(rs.Estimate.Pos.Y) {
		diff("pos.y", formatFloat(rs.Estimate.Pos.Y), formatFloat(est.Position.Y))
	}
	if math.Float64bits(est.RelaxCost) != math.Float64bits(rs.Estimate.RelaxCost) {
		diff("relaxCost", formatFloat(rs.Estimate.RelaxCost), formatFloat(est.RelaxCost))
	}
	if len(reports) != rs.Estimate.NumAnchors {
		diff("numAnchors", strconv.Itoa(rs.Estimate.NumAnchors), strconv.Itoa(len(reports)))
	}
}

// formatFloat renders a float for diff output with full round-trip
// precision.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ReadState performs a read-only recovery of dir — the same snapshot+tail
// replay Open runs, without truncating torn tails or opening a segment
// for appending. Replay tooling uses it to summarize a journal that a
// live server may still own.
//
//nomloc:effect(globalread,io)
func ReadState(dir string) (*State, RecoveryStats, error) {
	segments, snapshots, err := listDir(dir)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	st := &State{}
	for i := len(snapshots) - 1; i >= 0; i-- {
		loaded, serr := loadSnapshot(filepath.Join(dir, snapshots[i].name))
		if serr != nil {
			continue
		}
		st = loaded
		break
	}
	stats := RecoveryStats{SnapshotSeq: st.Seq, Segments: len(segments)}
	wantSeq := st.Seq + 1
	for i, entry := range segments {
		if i < len(segments)-1 && segments[i+1].seq <= wantSeq {
			continue
		}
		sc, serr := scanSegment(dir, entry, st.Seq)
		if serr != nil {
			return nil, stats, serr
		}
		if sc.torn > 0 && i < len(segments)-1 {
			return nil, stats, fmt.Errorf("%w: segment %s has %d invalid bytes before the journal tail",
				ErrCorrupt, entry.name, sc.torn)
		}
		for _, rec := range sc.records {
			if rec.Seq != wantSeq {
				if i == len(segments)-1 {
					break
				}
				return nil, stats, fmt.Errorf("%w: segment %s jumps to seq %d, want %d",
					ErrCorrupt, entry.name, rec.Seq, wantSeq)
			}
			if aerr := st.Apply(rec); aerr != nil {
				return nil, stats, aerr
			}
			wantSeq++
			stats.Records++
		}
		stats.TruncatedBytes += sc.torn
	}
	stats.LastSeq = wantSeq - 1
	return st, stats, nil
}

// DirSize sums the journal directory's file sizes — replay tooling's
// summary metric.
func DirSize(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("journal: list %s: %w", dir, err)
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			return 0, fmt.Errorf("journal: stat %s: %w", e.Name(), ierr)
		}
		total += info.Size()
	}
	return total, nil
}
