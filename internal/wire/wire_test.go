package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
)

func roundtrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if got.Type() != msg.Type() {
		t.Fatalf("type = %q, want %q", got.Type(), msg.Type())
	}
	return got
}

func TestHelloRoundtrip(t *testing.T) {
	in := &Hello{Role: RoleAP, ID: "ap1", Pos: geom.V(3, 4), SiteIndex: 2}
	got, ok := roundtrip(t, in).(*Hello)
	if !ok {
		t.Fatal("wrong concrete type")
	}
	if *got != *in {
		t.Errorf("got %+v, want %+v", got, in)
	}
}

func TestHelloAckRoundtrip(t *testing.T) {
	in := &HelloAck{OK: false, ServerID: "srv", Detail: "duplicate id"}
	got := roundtrip(t, in).(*HelloAck)
	if *got != *in {
		t.Errorf("got %+v", got)
	}
}

func TestRoundStartRoundtrip(t *testing.T) {
	in := &RoundStart{RoundID: 7, ObjectID: "obj", Packets: 25}
	got := roundtrip(t, in).(*RoundStart)
	if *got != *in {
		t.Errorf("got %+v", got)
	}
}

func TestProbeFrameRoundtrip(t *testing.T) {
	in := &ProbeFrame{
		RoundID: 3,
		To:      "ap2",
		Seq:     11,
		RSSI:    -47.5,
		CSI:     csi.Vector{1 + 2i, -0.5i, 3},
	}
	got := roundtrip(t, in).(*ProbeFrame)
	if got.To != in.To || got.Seq != in.Seq || got.RSSI != in.RSSI || got.RoundID != in.RoundID {
		t.Errorf("meta mismatch: %+v", got)
	}
	if len(got.CSI) != len(in.CSI) {
		t.Fatalf("CSI len = %d", len(got.CSI))
	}
	for i := range in.CSI {
		if got.CSI[i] != in.CSI[i] {
			t.Errorf("CSI[%d] = %v, want %v", i, got.CSI[i], in.CSI[i])
		}
	}
}

func TestPositionUpdateRoundtrip(t *testing.T) {
	in := &PositionUpdate{APID: "ap1", SiteIndex: 3, Pos: geom.V(6.5, 2.25)}
	got := roundtrip(t, in).(*PositionUpdate)
	if *got != *in {
		t.Errorf("got %+v", got)
	}
}

func TestCSIReportRoundtrip(t *testing.T) {
	in := &CSIReport{
		RoundID:   9,
		APID:      "ap3",
		SiteIndex: 1,
		Pos:       geom.V(1, 2),
		Nomadic:   true,
		Batch: csi.Batch{
			APID:      "ap3",
			SiteIndex: 1,
			Samples: []csi.Sample{
				{APID: "ap3", Seq: 0, CapturedAt: time.Unix(100, 0).UTC(), RSSI: -50, CSI: csi.Vector{2i, 1}},
				{APID: "ap3", Seq: 1, CapturedAt: time.Unix(100, 1000000).UTC(), RSSI: -51, CSI: csi.Vector{1, -1}},
			},
		},
	}
	got := roundtrip(t, in).(*CSIReport)
	if got.APID != "ap3" || !got.Nomadic || got.SiteIndex != 1 || got.RoundID != 9 {
		t.Errorf("meta mismatch: %+v", got)
	}
	if len(got.Batch.Samples) != 2 {
		t.Fatalf("samples = %d", len(got.Batch.Samples))
	}
	if got.Batch.Samples[0].CSI[0] != 2i {
		t.Errorf("sample CSI lost: %v", got.Batch.Samples[0].CSI)
	}
	if !got.Batch.Samples[1].CapturedAt.Equal(in.Batch.Samples[1].CapturedAt) {
		t.Error("timestamps lost")
	}
}

func TestEstimateAndErrorRoundtrip(t *testing.T) {
	est := &Estimate{RoundID: 1, ObjectID: "o", Pos: geom.V(4, 4), RelaxCost: 0.5, NumAnchors: 7}
	got := roundtrip(t, est).(*Estimate)
	if *got != *est {
		t.Errorf("got %+v", got)
	}
	em := &ErrorMsg{Detail: "boom"}
	got2 := roundtrip(t, em).(*ErrorMsg)
	if *got2 != *em {
		t.Errorf("got %+v", got2)
	}
}

func TestMultipleMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{Role: RoleObject, ID: "obj"},
		&RoundStart{RoundID: 1, ObjectID: "obj", Packets: 5},
		&ErrorMsg{Detail: "x"},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Errorf("message %d type = %q", i, got.Type())
		}
	}
	if _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("end of stream err = %v, want io.EOF", err)
	}
}

func TestReadMessageErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header accepted")
	}
	// Oversized frame claim.
	var big [4]byte
	binary.BigEndian.PutUint32(big[:], MaxFrameBytes+1)
	if _, err := ReadMessage(bytes.NewReader(big[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize err = %v", err)
	}
	// Truncated body.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10)
	if _, err := ReadMessage(bytes.NewReader(append(hdr[:], 1, 2, 3))); err == nil {
		t.Error("truncated body accepted")
	}
	// Bad JSON.
	payload := []byte("{not json")
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := ReadMessage(bytes.NewReader(append(hdr[:], payload...))); !errors.Is(err, ErrBadMessage) {
		t.Errorf("bad json err = %v", err)
	}
	// Unknown type.
	payload = []byte(`{"type":"martian","payload":{}}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := ReadMessage(bytes.NewReader(append(hdr[:], payload...))); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type err = %v", err)
	}
	// Payload shape mismatch.
	payload = []byte(`{"type":"hello","payload":{"role":42}}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := ReadMessage(bytes.NewReader(append(hdr[:], payload...))); !errors.Is(err, ErrBadMessage) {
		t.Errorf("bad payload err = %v", err)
	}
}

func TestWriteLargeCSIBatchWithinLimit(t *testing.T) {
	// A realistic burst (1000 packets × 30 subcarriers) must fit.
	samples := make([]csi.Sample, 1000)
	for i := range samples {
		v := make(csi.Vector, 30)
		for k := range v {
			v[k] = complex(float64(i), float64(k))
		}
		samples[i] = csi.Sample{Seq: uint64(i), CSI: v}
	}
	msg := &CSIReport{APID: "ap1", Batch: csi.Batch{APID: "ap1", Samples: samples}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatalf("large batch: %v", err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(*CSIReport).Batch.Samples) != 1000 {
		t.Error("samples lost")
	}
}

func TestReadMessageRandomGarbageNeverPanics(t *testing.T) {
	// Robustness: arbitrary byte streams must produce errors, not panics.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		// Cap any claimed length so ReadMessage does not try to allocate
		// gigabytes from a hostile header; real deployments get this from
		// MaxFrameBytes.
		if n >= 4 {
			buf[0] = 0
			buf[1] = 0
		}
		_, err := ReadMessage(bytes.NewReader(buf))
		if err == nil && n > 8 {
			// Vanishingly unlikely: random bytes forming a valid frame.
			t.Logf("trial %d: random bytes decoded as a message", trial)
		}
	}
}

func TestWriteReadManyRandomVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	var buf bytes.Buffer
	const n = 200
	for i := 0; i < n; i++ {
		v := make(csi.Vector, rng.Intn(40))
		for k := range v {
			v[k] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		msg := &ProbeFrame{RoundID: uint64(i), To: "ap", Seq: uint64(i), CSI: v}
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		pf, ok := msg.(*ProbeFrame)
		if !ok || pf.RoundID != uint64(i) {
			t.Fatalf("message %d corrupted: %+v", i, msg)
		}
	}
}

// TestDecodeMessage: the in-memory twin of ReadMessage accepts exactly
// one whole frame and rejects everything else — short headers, truncated
// bodies, and trailing bytes (a stream decoder would absorb the latter;
// the journal's stored payloads must not).
func TestDecodeMessage(t *testing.T) {
	var buf bytes.Buffer
	want := &CSIReport{RoundID: 9, APID: "ap1"}
	if err := WriteMessage(&buf, want); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	msg, err := DecodeMessage(frame)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	got, ok := msg.(*CSIReport)
	if !ok || got.RoundID != want.RoundID || got.APID != want.APID {
		t.Errorf("decoded %#v, want %#v", msg, want)
	}

	for name, b := range map[string][]byte{
		"short header":   frame[:3],
		"truncated body": frame[:len(frame)-1],
		"trailing bytes": append(append([]byte(nil), frame...), 'x'),
	} {
		if _, err := DecodeMessage(b); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v, want ErrBadMessage", name, err)
		}
	}

	// A length prefix beyond the frame cap is the size error, not a
	// decode error, matching ReadMessage.
	huge := append([]byte(nil), frame...)
	binary.BigEndian.PutUint32(huge[:4], MaxFrameBytes+1)
	if _, err := DecodeMessage(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized prefix: err = %v, want ErrFrameTooLarge", err)
	}
}
