package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// replRNG derives a deterministic RNG for the round-trip property runs.
func replRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randBytes draws n pseudo-random payload bytes (full 0..255 range:
// payloads are binary and cross the envelope as base64).
func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// randString draws n pseudo-random printable-ASCII characters. String
// fields are JSON text, so only valid UTF-8 round-trips — binary data
// belongs in ReplRecord.Payload.
func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + rng.Intn('~'-' '+1))
	}
	return string(b)
}

// TestReplMessagesRoundTrip is the encode/decode property test for the
// four replication messages: many pseudo-random instances, each written
// through the real framing and read back, must compare equal field by
// field (payload bytes included — they cross the JSON envelope as
// base64).
func TestReplMessagesRoundTrip(t *testing.T) {
	rng := replRNG(0x5eed)
	roundTrip := func(t *testing.T, msg Message) Message {
		t.Helper()
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if got.Type() != msg.Type() {
			t.Fatalf("type changed: %q → %q", msg.Type(), got.Type())
		}
		a, _ := json.Marshal(msg)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed %T:\n%s\n%s", msg, a, b)
		}
		return got
	}

	for trial := 0; trial < 200; trial++ {
		hello := &ReplHello{
			ServerID: randString(rng, rng.Intn(12)),
			Epoch:    rng.Uint64(),
		}
		roundTrip(t, hello)

		recs := make([]ReplRecord, rng.Intn(5))
		seq := rng.Uint64() % (1 << 40)
		for i := range recs {
			recs[i] = ReplRecord{
				Seq:     seq + uint64(i),
				Kind:    uint8(rng.Intn(256)),
				Payload: randBytes(rng, rng.Intn(64)),
			}
		}
		batch := roundTrip(t, &ReplBatch{Epoch: rng.Uint64(), Records: recs}).(*ReplBatch)
		if len(batch.Records) != len(recs) {
			t.Fatalf("batch record count changed: %d → %d", len(recs), len(batch.Records))
		}
		for i, rec := range batch.Records {
			if !bytes.Equal(rec.Payload, recs[i].Payload) {
				t.Fatalf("record %d payload changed: %x → %x", i, recs[i].Payload, rec.Payload)
			}
		}

		roundTrip(t, &ReplAck{
			OK:     rng.Intn(2) == 0,
			Epoch:  rng.Uint64(),
			Seq:    rng.Uint64(),
			Detail: randString(rng, rng.Intn(8)),
		})
		roundTrip(t, &Promote{Epoch: rng.Uint64()})
	}
}

// TestReplRecordPayloadBinarySafe pins that arbitrary binary record
// payloads — including invalid UTF-8 — survive the JSON envelope intact.
func TestReplRecordPayloadBinarySafe(t *testing.T) {
	payload := []byte{0x00, 0xff, 0xfe, 0x80, 0x7f, '"', '\\', '\n'}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &ReplBatch{Epoch: 1, Records: []ReplRecord{{Seq: 1, Kind: 4, Payload: payload}}}); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*ReplBatch).Records[0].Payload
	if !bytes.Equal(got, payload) {
		t.Fatalf("binary payload mangled: %x → %x", payload, got)
	}
}
