// Package wire defines the NomLoc message protocol: length-prefixed JSON
// frames carrying typed messages between the object, the access points,
// and the localization server (the three tiers of the paper's Fig. 2
// architecture).
//
// Topology is hub-and-spoke: every agent connects to the server, which
// routes probe frames from the object to APs and collects CSI reports.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
)

// MsgType tags a protocol message.
type MsgType string

// Protocol message types.
const (
	TypeHello          MsgType = "hello"
	TypeHelloAck       MsgType = "hello_ack"
	TypeProbeFrame     MsgType = "probe_frame"
	TypeRoundStart     MsgType = "round_start"
	TypePositionUpdate MsgType = "position_update"
	TypeCSIReport      MsgType = "csi_report"
	TypeReportAck      MsgType = "report_ack"
	TypeEstimate       MsgType = "estimate"
	TypeError          MsgType = "error"
	TypeReplHello      MsgType = "repl_hello"
	TypeReplBatch      MsgType = "repl_batch"
	TypeReplAck        MsgType = "repl_ack"
	TypePromote        MsgType = "promote"
)

// Role identifies what kind of agent a connection belongs to.
type Role string

// Agent roles.
const (
	RoleAP     Role = "ap"
	RoleObject Role = "object"
	RoleViewer Role = "viewer"
	// RoleRepl marks a replication link from a primary server streaming
	// its journal to a standby.
	RoleRepl Role = "repl"
)

// Protocol limits and errors.
const (
	// MaxFrameBytes bounds a single frame (headroom for a large CSI
	// batch).
	MaxFrameBytes = 16 << 20
)

var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds limit")
	ErrUnknownType   = errors.New("wire: unknown message type")
	ErrBadMessage    = errors.New("wire: malformed message")
)

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the wire tag of the message.
	Type() MsgType
}

// Hello announces an agent to the server.
type Hello struct {
	// Role is the agent kind.
	Role Role `json:"role"`
	// ID is the agent identity (AP id or object id).
	ID string `json:"id"`
	// Pos is the agent's position (APs only).
	Pos geom.Vec `json:"pos"`
	// SiteIndex is the nomadic AP's current waypoint (0 for static APs).
	SiteIndex int `json:"siteIndex"`
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

// HelloAck confirms registration.
type HelloAck struct {
	// OK reports acceptance.
	OK bool `json:"ok"`
	// ServerID names the server instance.
	ServerID string `json:"serverId"`
	// Detail carries a rejection reason when OK is false.
	Detail string `json:"detail,omitempty"`
}

// Type implements Message.
func (*HelloAck) Type() MsgType { return TypeHelloAck }

// RoundStart opens a measurement round: the object announces how many
// probe frames each AP should accumulate before reporting.
type RoundStart struct {
	// RoundID identifies the round.
	RoundID uint64 `json:"roundId"`
	// ObjectID is the transmitting object.
	ObjectID string `json:"objectId"`
	// Packets is the burst length per AP.
	Packets int `json:"packets"`
}

// Type implements Message.
func (*RoundStart) Type() MsgType { return TypeRoundStart }

// ProbeFrame is one simulated radio capture: the CSI an AP observes for
// one probe packet from the object. The server routes it to the addressed
// AP. (On real hardware this frame is the physical channel; the simulator
// computes it at the transmitter side.)
type ProbeFrame struct {
	// RoundID ties the frame to a measurement round.
	RoundID uint64 `json:"roundId"`
	// To addresses the capturing AP.
	To string `json:"to"`
	// Seq is the packet number within the round.
	Seq uint64 `json:"seq"`
	// RSSI is the coarse power reading in dBm.
	RSSI float64 `json:"rssi"`
	// CSI is the per-subcarrier channel snapshot.
	CSI csi.Vector `json:"csi"`
}

// Type implements Message.
func (*ProbeFrame) Type() MsgType { return TypeProbeFrame }

// PositionUpdate reports a nomadic AP's new believed position.
type PositionUpdate struct {
	// APID is the moving AP.
	APID string `json:"apId"`
	// SiteIndex is the new waypoint index (1-based per the mobility
	// trace).
	SiteIndex int `json:"siteIndex"`
	// Pos is the believed position at the new site.
	Pos geom.Vec `json:"pos"`
}

// Type implements Message.
func (*PositionUpdate) Type() MsgType { return TypePositionUpdate }

// CSIReport delivers an AP's accumulated burst for a round to the server.
type CSIReport struct {
	// RoundID ties the report to a measurement round.
	RoundID uint64 `json:"roundId"`
	// APID is the reporting AP.
	APID string `json:"apId"`
	// SiteIndex is the AP's waypoint at capture time (0 = static).
	SiteIndex int `json:"siteIndex"`
	// Pos is the believed AP position at capture time.
	Pos geom.Vec `json:"pos"`
	// Nomadic marks reports from a moving AP.
	Nomadic bool `json:"nomadic"`
	// Batch carries the captured samples.
	Batch csi.Batch `json:"batch"`
}

// Type implements Message.
func (*CSIReport) Type() MsgType { return TypeCSIReport }

// ReportAck acknowledges one CSIReport. Agents keep a report in their
// unacknowledged tail until its ack arrives, re-sending it after a
// reconnect or alongside the next report; the server's idempotent report
// handling makes the resulting duplicates harmless.
type ReportAck struct {
	// RoundID is the acknowledged report's round.
	RoundID uint64 `json:"roundId"`
	// APID is the reporting AP.
	APID string `json:"apId"`
	// SiteIndex is the acknowledged report's capture site.
	SiteIndex int `json:"siteIndex"`
}

// Type implements Message.
func (*ReportAck) Type() MsgType { return TypeReportAck }

// Estimate is the server's localization result for a round.
type Estimate struct {
	// RoundID is the round the estimate answers.
	RoundID uint64 `json:"roundId"`
	// ObjectID is the localized object.
	ObjectID string `json:"objectId"`
	// Pos is the position estimate.
	Pos geom.Vec `json:"pos"`
	// RelaxCost is the relaxation cost of the winning solve.
	RelaxCost float64 `json:"relaxCost"`
	// NumAnchors is how many anchors entered the solve.
	NumAnchors int `json:"numAnchors"`
}

// Type implements Message.
func (*Estimate) Type() MsgType { return TypeEstimate }

// ErrorMsg reports a protocol-level failure to a peer.
type ErrorMsg struct {
	// Detail is a human-readable description.
	Detail string `json:"detail"`
}

// Type implements Message.
func (*ErrorMsg) Type() MsgType { return TypeError }

// ReplHello opens a replication link from a primary to a standby. The
// standby answers with a ReplAck whose Seq is the last journal sequence
// it has durably applied — the primary resumes streaming from there.
type ReplHello struct {
	// ServerID names the logical localization service both sides serve.
	// A standby rejects a primary announcing a different service.
	ServerID string `json:"serverId"`
	// Epoch is the primary's fencing epoch. A standby that has promoted
	// to a higher epoch rejects the hello: the sender is a stale primary.
	Epoch uint64 `json:"epoch"`
}

// Type implements Message.
func (*ReplHello) Type() MsgType { return TypeReplHello }

// ReplRecord is one journal record in transit. Payload rides as base64
// through the JSON envelope; Kind mirrors journal record kinds without
// importing the journal package.
type ReplRecord struct {
	// Seq is the record's journal sequence number.
	Seq uint64 `json:"seq"`
	// Kind is the journal record kind.
	Kind uint8 `json:"kind"`
	// Payload is the record body, exactly as journaled.
	Payload []byte `json:"payload"`
}

// ReplBatch carries a contiguous run of journal records from the primary
// to the standby. The standby acks the batch only after every record is
// durable in its own journal AND applied to its state.
type ReplBatch struct {
	// Epoch is the sending primary's fencing epoch, re-checked per batch
	// so a promotion mid-stream fences the rest of the stream too.
	Epoch uint64 `json:"epoch"`
	// Records are the journal records, ascending contiguous Seq.
	Records []ReplRecord `json:"records"`
}

// Type implements Message.
func (*ReplBatch) Type() MsgType { return TypeReplBatch }

// ReplAck answers a ReplHello, ReplBatch, or Promote.
type ReplAck struct {
	// OK reports acceptance. False with a higher Epoch means the sender
	// is fenced and must stop replicating.
	OK bool `json:"ok"`
	// Epoch is the receiver's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// Seq is the last journal sequence the receiver has durably applied.
	Seq uint64 `json:"seq"`
	// Detail carries a rejection reason when OK is false.
	Detail string `json:"detail,omitempty"`
}

// Type implements Message.
func (*ReplAck) Type() MsgType { return TypeReplAck }

// Promote orders a standby to become the primary. The standby adopts
// max(Epoch, its epoch+1) as its new fencing epoch — strictly above every
// epoch the old primary ever used — and begins accepting agent sessions.
type Promote struct {
	// Epoch is the requested new epoch; 0 lets the standby pick its
	// current epoch + 1.
	Epoch uint64 `json:"epoch"`
}

// Type implements Message.
func (*Promote) Type() MsgType { return TypePromote }

// Compile-time interface checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*HelloAck)(nil)
	_ Message = (*RoundStart)(nil)
	_ Message = (*ProbeFrame)(nil)
	_ Message = (*PositionUpdate)(nil)
	_ Message = (*CSIReport)(nil)
	_ Message = (*ReportAck)(nil)
	_ Message = (*Estimate)(nil)
	_ Message = (*ErrorMsg)(nil)
	_ Message = (*ReplHello)(nil)
	_ Message = (*ReplBatch)(nil)
	_ Message = (*ReplAck)(nil)
	_ Message = (*Promote)(nil)
)

// envelope is the on-wire frame body.
type envelope struct {
	Type    MsgType         `json:"type"`
	Payload json.RawMessage `json:"payload"`
}

// newByType allocates the concrete message for a wire tag.
func newByType(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeHelloAck:
		return &HelloAck{}, nil
	case TypeRoundStart:
		return &RoundStart{}, nil
	case TypeProbeFrame:
		return &ProbeFrame{}, nil
	case TypePositionUpdate:
		return &PositionUpdate{}, nil
	case TypeCSIReport:
		return &CSIReport{}, nil
	case TypeReportAck:
		return &ReportAck{}, nil
	case TypeEstimate:
		return &Estimate{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeReplHello:
		return &ReplHello{}, nil
	case TypeReplBatch:
		return &ReplBatch{}, nil
	case TypeReplAck:
		return &ReplAck{}, nil
	case TypePromote:
		return &Promote{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, t)
	}
}

// WriteMessage frames and writes one message: a big-endian uint32 length
// followed by the JSON envelope.
func WriteMessage(w io.Writer, msg Message) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("wire: marshal payload: %w", err)
	}
	frame, err := json.Marshal(envelope{Type: msg.Type(), Payload: payload})
	if err != nil {
		return fmt.Errorf("wire: marshal envelope: %w", err)
	}
	if len(frame) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(frame))
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(frame)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // preserve io.EOF for clean-shutdown detection
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	return decodeFrame(frame)
}

// DecodeMessage decodes one framed message from an in-memory buffer: the
// length prefix must describe the remainder exactly. It is the io-free
// twin of ReadMessage for payloads already in memory — the journal
// replay path decodes stored reports through it, keeping the replay
// effect set clean of io (analysis.GateForbidden).
func DecodeMessage(buf []byte) (Message, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short frame header", ErrBadMessage)
	}
	n := binary.BigEndian.Uint32(buf[:4])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(len(buf)-4) != n {
		return nil, fmt.Errorf("%w: frame length %d, buffer holds %d", ErrBadMessage, n, len(buf)-4)
	}
	return decodeFrame(buf[4:])
}

// decodeFrame unmarshals one frame body (the JSON envelope).
func decodeFrame(frame []byte) (Message, error) {
	var env envelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return nil, fmt.Errorf("%w: envelope: %v", ErrBadMessage, err)
	}
	msg, err := newByType(env.Type)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(env.Payload, msg); err != nil {
		return nil, fmt.Errorf("%w: payload for %q: %v", ErrBadMessage, env.Type, err)
	}
	return msg, nil
}

// IsDecodeError reports whether err is a per-frame decode failure after
// which the stream is still framed: the broken frame was consumed whole,
// so the reader may keep going. Transport errors and a too-large length
// prefix are NOT decode errors — after those the stream is desynced and
// the session is lost. Chaos-corrupted frames land here, which is what
// lets the server and agents survive corruption without dropping the
// session.
func IsDecodeError(err error) bool {
	return errors.Is(err, ErrBadMessage) || errors.Is(err, ErrUnknownType)
}
