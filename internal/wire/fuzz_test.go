package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"github.com/nomloc/nomloc/internal/chaos"
	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
)

// frame length-prefixes a raw envelope body the way WriteMessage does,
// for building seed inputs (including deliberately broken ones).
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// encode frames a valid message for the seed corpus.
func encode(tb testing.TB, msg Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadMessage throws arbitrary byte streams at the frame decoder.
// Whatever the input, ReadMessage must never panic, and any message it
// accepts must survive a write/read round trip unchanged (frames are
// canonical JSON, so re-encoding an accepted message must re-decode to
// the same payload).
func FuzzReadMessage(f *testing.F) {
	// One valid frame per message type, so the fuzzer starts from every
	// payload schema.
	seeds := []Message{
		&Hello{Role: RoleAP, ID: "ap1", Pos: geom.V(1, 2), SiteIndex: 3},
		&HelloAck{OK: true, ServerID: "srv"},
		&RoundStart{RoundID: 7, ObjectID: "obj", Packets: 25},
		&ProbeFrame{RoundID: 7, To: "ap1", Seq: 9, RSSI: -40, CSI: csi.Vector{1 + 2i, 3 - 4i}},
		&PositionUpdate{APID: "nomad", SiteIndex: 2, Pos: geom.V(5, 6)},
		&CSIReport{RoundID: 7, APID: "ap1", Nomadic: true, Batch: csi.Batch{
			APID:    "ap1",
			Samples: []csi.Sample{{APID: "ap1", Seq: 0, CSI: csi.Vector{1, 2i}}},
		}},
		&Estimate{RoundID: 7, ObjectID: "obj", Pos: geom.V(3, 4), RelaxCost: 0.5, NumAnchors: 6},
		&ErrorMsg{Detail: "boom"},
		&ReplHello{ServerID: "srv", Epoch: 3},
		&ReplBatch{Epoch: 3, Records: []ReplRecord{{Seq: 9, Kind: 4, Payload: []byte{0, 1, 2}}}},
		&ReplAck{OK: true, Epoch: 3, Seq: 9},
		&Promote{Epoch: 4},
	}
	for _, msg := range seeds {
		f.Add(encode(f, msg))
	}
	// Broken shapes: truncated header, truncated body, oversized length,
	// non-JSON body, unknown type, wrong payload schema.
	f.Add([]byte{0, 0})
	f.Add(frame([]byte(`{"type":"hello","payload":{"id"`))[:10])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(frame([]byte("not json")))
	f.Add(frame([]byte(`{"type":"warp","payload":{}}`)))
	f.Add(frame([]byte(`{"type":"round_start","payload":{"roundId":"x"}}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			if msg != nil {
				t.Fatalf("error %v returned alongside message %v", err, msg)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		again, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("round trip changed type: %q → %q", msg.Type(), again.Type())
		}
		a, _ := json.Marshal(msg)
		b, _ := json.Marshal(again)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed payload:\n%s\n%s", a, b)
		}
	})
}

// FuzzCorruptedFrames replays the chaos layer's corruption against the
// decoder: a valid frame is byte-flipped by chaos.CorruptCopy (any
// offset, header included — harsher than the in-band Corrupt fault) and
// the result must decode to a message or fail with a TYPED error. A
// corrupted frame must never panic the decoder and never produce an
// untyped error: the server and agents branch on wire.IsDecodeError to
// decide whether a session survives, so an unclassified failure would
// drop sessions that could have lived.
func FuzzCorruptedFrames(f *testing.F) {
	seeds := [][]byte{
		encode(f, &Hello{Role: RoleAP, ID: "ap1", Pos: geom.V(1, 2), SiteIndex: 3}),
		encode(f, &RoundStart{RoundID: 7, ObjectID: "obj", Packets: 25}),
		encode(f, &ReportAck{RoundID: 7, APID: "ap1", SiteIndex: 2}),
		encode(f, &CSIReport{RoundID: 7, APID: "ap1", Nomadic: true, Batch: csi.Batch{
			APID:    "ap1",
			Samples: []csi.Sample{{APID: "ap1", Seq: 0, CSI: csi.Vector{1, 2i}}},
		}}),
		encode(f, &Estimate{RoundID: 7, ObjectID: "obj", Pos: geom.V(3, 4), RelaxCost: 0.5, NumAnchors: 6}),
		encode(f, &ReplHello{ServerID: "srv", Epoch: 3}),
		encode(f, &ReplBatch{Epoch: 3, Records: []ReplRecord{{Seq: 9, Kind: 4, Payload: []byte{0xde, 0xad}}}}),
		encode(f, &ReplAck{OK: false, Epoch: 4, Seq: 9, Detail: "fenced: stale epoch"}),
		encode(f, &Promote{Epoch: 4}),
	}
	for i, data := range seeds {
		f.Add(data, int64(i+1), 1)
		f.Add(data, int64(1e9+int64(i)), 4)
	}
	f.Fuzz(func(t *testing.T, data []byte, seed int64, flips int) {
		if flips < 0 {
			flips = -flips
		}
		corrupted := chaos.CorruptCopy(data, seed, flips%16)
		msg, err := ReadMessage(bytes.NewReader(corrupted))
		if err == nil {
			if msg == nil {
				t.Fatal("nil message with nil error")
			}
			return
		}
		switch {
		case IsDecodeError(err):
		case errors.Is(err, ErrFrameTooLarge):
		case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		default:
			t.Fatalf("corrupted frame produced an untyped error: %v", err)
		}
	})
}

// TestReadMessageSeedCorpus replays the checked-in corpus directly so
// plain `go test` (no -fuzz) exercises the decoder on every seed.
func TestReadMessageSeedCorpus(t *testing.T) {
	// A valid frame decodes; each mutilation fails with a typed error.
	valid := encode(t, &RoundStart{RoundID: 1, ObjectID: "obj", Packets: 1})
	if _, err := ReadMessage(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader(valid[:3])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader(valid[:len(valid)-2])); err == nil {
		t.Error("truncated body accepted")
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized length: %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader(frame([]byte("{")))); !errors.Is(err, ErrBadMessage) {
		t.Errorf("broken envelope: %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader(frame([]byte(`{"type":"warp","payload":{}}`)))); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: %v", err)
	}
}
