//go:build ignore

// gen_corpus.go regenerates the checked-in seed corpora for
// FuzzReadMessage and the replication-message entries of
// FuzzCorruptedFrames. Run from the package directory:
//
//	go run testdata/gen_corpus.go
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

func encode(msg wire.Message) []byte {
	var buf bytes.Buffer
	if err := wire.WriteMessage(&buf, msg); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func main() {
	seeds := [][]byte{
		encode(&wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 2), SiteIndex: 3}),
		encode(&wire.HelloAck{OK: true, ServerID: "srv"}),
		encode(&wire.RoundStart{RoundID: 7, ObjectID: "obj", Packets: 25}),
		encode(&wire.ProbeFrame{RoundID: 7, To: "ap1", Seq: 9, RSSI: -40, CSI: csi.Vector{1 + 2i, 3 - 4i}}),
		encode(&wire.PositionUpdate{APID: "nomad", SiteIndex: 2, Pos: geom.V(5, 6)}),
		encode(&wire.CSIReport{RoundID: 7, APID: "ap1", Nomadic: true, Batch: csi.Batch{
			APID:    "ap1",
			Samples: []csi.Sample{{APID: "ap1", Seq: 0, CSI: csi.Vector{1, 2i}}},
		}}),
		encode(&wire.Estimate{RoundID: 7, ObjectID: "obj", Pos: geom.V(3, 4), RelaxCost: 0.5, NumAnchors: 6}),
		encode(&wire.ErrorMsg{Detail: "boom"}),
		encode(&wire.ReplHello{ServerID: "srv", Epoch: 3}),
		encode(&wire.ReplBatch{Epoch: 3, Records: []wire.ReplRecord{{Seq: 9, Kind: 4, Payload: []byte{0xde, 0xad}}}}),
		encode(&wire.ReplAck{OK: false, Epoch: 4, Seq: 9, Detail: "fenced: stale epoch"}),
		encode(&wire.Promote{Epoch: 4}),
		{0, 0},
		{0xff, 0xff, 0xff, 0xff},
		frame([]byte("not json")),
		frame([]byte(`{"type":"warp","payload":{}}`)),
		frame([]byte(`{"type":"round_start","payload":{"roundId":"x"}}`)),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReadMessage")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus entries to %s\n", len(seeds), dir)

	// FuzzCorruptedFrames takes (data, seed, flips) triples; seed-01..03
	// are hand-written and left alone, the replication messages start at
	// seed-04.
	type corrupted struct {
		data  []byte
		seed  int64
		flips int
	}
	replSeeds := []corrupted{
		{encode(&wire.ReplHello{ServerID: "srv", Epoch: 3}), 11, 2},
		{encode(&wire.ReplBatch{Epoch: 3, Records: []wire.ReplRecord{{Seq: 9, Kind: 4, Payload: []byte{0xde, 0xad}}}}), 12, 5},
		{encode(&wire.ReplAck{OK: false, Epoch: 4, Seq: 9, Detail: "fenced: stale epoch"}), 13, 3},
		{encode(&wire.Promote{Epoch: 4}), 14, 1},
	}
	dir = filepath.Join("testdata", "fuzz", "FuzzCorruptedFrames")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, c := range replSeeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nint64(%d)\nint(%d)\n", c.data, c.seed, c.flips)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i+4))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus entries to %s\n", len(replSeeds), dir)
}
