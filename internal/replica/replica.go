// Package replica implements primary/standby streaming replication for
// the NomLoc journal (DESIGN.md §14). The primary runs a Sender that
// follows its own write-ahead log through journal.Tail and ships records
// to the standby over the wire protocol's ReplHello/ReplBatch/ReplAck
// messages; the standby appends each record to its own journal via
// AppendRaw (preserving the primary's sequence numbers, so the two
// directories stay byte-interchangeable) and applies it to live state
// through an Applier.
//
// Every message carries a monotonically fenced epoch. A standby that has
// promoted to epoch E rejects any primary announcing an epoch below E —
// the split-brain guard: a resurrected old primary is fenced at the
// handshake (and again per batch, in case promotion raced a stream) and
// its Sender terminates with ErrFenced instead of retrying.
//
// The Applier deliberately reuses journal.State.Apply — the exact code
// path crash recovery and the offline replayer run — so a standby's
// state can never drift from what the primary would recover to.
package replica

import (
	"fmt"

	"github.com/nomloc/nomloc/internal/journal"
)

// Applier accumulates replicated journal records into live server state.
// It enforces sequence contiguity (replication must deliver every record
// exactly once, in order) and funnels every record through
// journal.State.Apply, the shared replay path.
//
// An Applier is owned by one goroutine (the standby server applies under
// its own lock); it performs no synchronization of its own.
type Applier struct {
	st *journal.State
}

// NewApplier wraps st (the standby's recovered journal state; nil starts
// empty). The standby seeds it from journal.Open's recovery so a
// restarted standby resumes applying exactly where its disk ends.
func NewApplier(st *journal.State) *Applier {
	if st == nil {
		st = &journal.State{}
	}
	return &Applier{st: st}
}

// Apply absorbs one replicated record. The record must carry the next
// sequence number; a gap or duplicate is a typed journal.ErrSeqGap so the
// replication session can renegotiate its resume point.
//
//nomloc:effect(globalread)
func (a *Applier) Apply(rec journal.Record) error {
	if rec.Seq != a.st.Seq+1 {
		return fmt.Errorf("%w: applier got seq %d, want %d", journal.ErrSeqGap, rec.Seq, a.st.Seq+1)
	}
	return a.st.Apply(rec)
}

// Seq returns the last applied sequence number.
func (a *Applier) Seq() uint64 { return a.st.Seq }

// State exposes the accumulated state. The standby adopts it wholesale at
// promotion; until then callers must treat it as read-only.
func (a *Applier) State() *journal.State { return a.st }
