package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// Sender errors.
var (
	// ErrFenced marks a terminal rejection: the standby (or its
	// successor) runs a higher epoch, so this sender belongs to a
	// deposed primary and must stop — retrying would be split-brain.
	ErrFenced = errors.New("replica: fenced by a higher epoch")
	// ErrSenderClosed is returned by Run after Close.
	ErrSenderClosed = errors.New("replica: sender closed")
	// ErrRecordTooLarge marks a single journal record too big to fit a
	// replication frame even alone (payloads cross the envelope as
	// base64, which inflates them by 4/3).
	ErrRecordTooLarge = errors.New("replica: record exceeds replication frame budget")
)

// Sender defaults.
const (
	defaultBatchMax   = 64
	defaultBatchBytes = 4 << 20
	defaultPoll       = 20 * time.Millisecond
	defaultRetryBase  = 10 * time.Millisecond
	defaultRetryMax   = time.Second
	// senderStream tags the RNG stream jittering reconnect backoff,
	// disjoint from agent and scenario streams of the same seed.
	senderStream = 0x5e17d1
)

// Config parameterizes a Sender.
type Config struct {
	// Journal is the live journal to stream. Its fsync floor bounds the
	// stream: a record is shipped only after the append that wrote it
	// has committed. Exactly one of Journal and Dir must be set.
	Journal *journal.Journal
	// Dir streams a journal directory without a live owner — the
	// post-mortem drain of a dead primary's disk toward the standby
	// before promotion.
	Dir string
	// Addr is the standby's listen address.
	Addr string
	// ServerID names the logical service; it must match the standby's.
	ServerID string
	// Epoch is the sending primary's fencing epoch.
	Epoch uint64
	// Dialer replaces plain TCP dialing when set (chaos injection,
	// in-memory transports).
	Dialer func(addr string) (net.Conn, error)
	// BatchMax caps records per ReplBatch (default 64).
	BatchMax int
	// BatchBytes caps the summed payload bytes per batch (default 4 MiB;
	// base64 inflation keeps the frame under wire.MaxFrameBytes).
	BatchBytes int
	// Poll is the sleep between tail checks when caught up (default
	// 20 ms).
	Poll time.Duration
	// Seed drives the reconnect-jitter stream.
	Seed int64
	// RetryBase and RetryMax bound the reconnect backoff (defaults
	// 10 ms and 1 s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxRetries caps consecutive failed connection attempts; 0 retries
	// forever (until Close or a fencing rejection).
	MaxRetries int
	// Sleep replaces time.Sleep when set (tests collapse waits).
	Sleep func(time.Duration)
	// Telemetry, when set, receives the sender's nomloc_repl_* metrics.
	Telemetry *telemetry.Registry
	// Logf, when set, receives diagnostic log lines.
	Logf func(format string, args ...any)
}

// Sender streams journal records to a standby until fenced or closed.
type Sender struct {
	cfg     Config
	rng     *rand.Rand
	metrics *senderMetrics

	mu       sync.Mutex
	conn     net.Conn // live connection, closed to interrupt a blocking read
	closed   bool
	acked    uint64 // highest seq the standby acknowledged
	lastRead uint64 // highest seq gathered off the tail
	drained  bool   // dir mode: the tail hit the directory's durable end
}

// NewSender validates cfg and builds a sender. Run starts the stream.
func NewSender(cfg Config) (*Sender, error) {
	if (cfg.Journal == nil) == (cfg.Dir == "") {
		return nil, errors.New("replica: config needs exactly one of Journal and Dir")
	}
	if cfg.Addr == "" {
		return nil, errors.New("replica: config needs the standby address")
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = defaultBatchMax
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = defaultBatchBytes
	}
	if cfg.Poll <= 0 {
		cfg.Poll = defaultPoll
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = defaultRetryMax
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return &Sender{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(parallel.MixSeed(cfg.Seed, senderStream, 0))),
		metrics: newSenderMetrics(cfg.Telemetry),
	}, nil
}

// Run streams the journal to the standby, reconnecting with capped
// exponential backoff on transport loss, until Close (returns
// ErrSenderClosed), a fencing rejection (returns ErrFenced), or — in Dir
// mode — never on its own: a drained directory just polls for more, so
// the caller decides when the drain is complete via Caught.
func (s *Sender) Run() error {
	attempt := 0
	for {
		if s.isClosed() {
			return ErrSenderClosed
		}
		err := s.session()
		switch {
		case errors.Is(err, ErrFenced):
			s.cfg.Logf("replica: sender fenced: %v", err)
			return err
		case errors.Is(err, ErrSenderClosed), s.isClosed():
			return ErrSenderClosed
		case errors.Is(err, journal.ErrTailGap), errors.Is(err, ErrRecordTooLarge):
			// Unrecoverable by retrying: the stream cannot make progress.
			return err
		}
		attempt++
		if s.cfg.MaxRetries > 0 && attempt > s.cfg.MaxRetries {
			return fmt.Errorf("replica: giving up after %d attempts: %w", attempt-1, err)
		}
		s.cfg.Logf("replica: session lost (attempt %d): %v", attempt, err)
		s.cfg.Sleep(backoff(s.cfg.RetryBase, s.cfg.RetryMax, attempt, s.rng))
	}
}

// Caught reports whether the standby has acknowledged every record the
// source currently holds — the drain-complete signal before a promotion.
// In Dir mode "currently holds" means the directory's durable end, which
// the drain discovers by reading to it.
func (s *Sender) Caught() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Journal != nil {
		return s.acked >= s.cfg.Journal.LastSeq()
	}
	return s.drained && s.acked >= s.lastRead
}

// Acked returns the highest sequence number the standby has durably
// acknowledged.
func (s *Sender) Acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// session runs one connection lifetime: handshake, resume, stream.
func (s *Sender) session() error {
	conn, err := s.cfg.Dialer(s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("replica: dial %s: %w", s.cfg.Addr, err)
	}
	if !s.install(conn) {
		_ = conn.Close()
		return ErrSenderClosed
	}
	defer s.uninstall(conn)
	s.metrics.connect()

	if err := wire.WriteMessage(conn, &wire.ReplHello{ServerID: s.cfg.ServerID, Epoch: s.cfg.Epoch}); err != nil {
		return fmt.Errorf("replica: hello: %w", err)
	}
	ack, err := s.readAck(conn)
	if err != nil {
		return err
	}
	if !ack.OK {
		if ack.Epoch > s.cfg.Epoch {
			return fmt.Errorf("%w: standby at epoch %d, sender at %d: %s", ErrFenced, ack.Epoch, s.cfg.Epoch, ack.Detail)
		}
		return fmt.Errorf("replica: standby rejected hello: %s", ack.Detail)
	}
	s.setAcked(ack.Seq)
	return s.stream(conn, ack.Seq)
}

// stream follows the journal from afterSeq, shipping batches and
// processing acks until the connection dies or the sender closes.
func (s *Sender) stream(conn net.Conn, afterSeq uint64) error {
	tail, err := s.openTail(afterSeq)
	if err != nil {
		return err
	}
	defer tail.Close()
	var held *wire.ReplRecord // byte-budget spillover from the last gather
	for {
		if s.isClosed() {
			return ErrSenderClosed
		}
		batch, spill, err := s.gather(tail, held)
		if err != nil {
			return err
		}
		held = spill
		if len(batch) == 0 {
			s.metrics.lag(s.lagRecords())
			s.cfg.Sleep(s.cfg.Poll)
			continue
		}
		if err := wire.WriteMessage(conn, &wire.ReplBatch{Epoch: s.cfg.Epoch, Records: batch}); err != nil {
			return fmt.Errorf("replica: send batch: %w", err)
		}
		ack, err := s.readAck(conn)
		if err != nil {
			return err
		}
		if !ack.OK {
			if ack.Epoch > s.cfg.Epoch {
				return fmt.Errorf("%w: standby at epoch %d, sender at %d: %s", ErrFenced, ack.Epoch, s.cfg.Epoch, ack.Detail)
			}
			return fmt.Errorf("replica: standby rejected batch: %s", ack.Detail)
		}
		s.setAcked(ack.Seq)
		s.metrics.sent(len(batch))
		s.metrics.lag(s.lagRecords())
	}
}

// openTail opens the configured record source positioned after afterSeq.
func (s *Sender) openTail(afterSeq uint64) (*journal.Tail, error) {
	if s.cfg.Journal != nil {
		return s.cfg.Journal.Tail(afterSeq)
	}
	return journal.TailDir(s.cfg.Dir, afterSeq)
}

// gather pulls the next batch off the tail, bounded by count and bytes.
// held is a record a previous gather consumed but could not fit; a
// record that overflows this batch comes back as the next held.
func (s *Sender) gather(tail *journal.Tail, held *wire.ReplRecord) ([]wire.ReplRecord, *wire.ReplRecord, error) {
	var batch []wire.ReplRecord
	bytes := 0
	if held != nil {
		batch = append(batch, *held)
		bytes = len(held.Payload)
	}
	for len(batch) < s.cfg.BatchMax {
		rec, done, err := tail.Next()
		if err != nil {
			return nil, nil, err
		}
		if done {
			s.markRead(0, s.cfg.Journal == nil)
			break
		}
		if len(rec.Payload) > s.cfg.BatchBytes {
			return nil, nil, fmt.Errorf("%w: seq %d carries %d bytes", ErrRecordTooLarge, rec.Seq, len(rec.Payload))
		}
		s.markRead(rec.Seq, false)
		wr := wire.ReplRecord{Seq: rec.Seq, Kind: uint8(rec.Kind), Payload: rec.Payload}
		if bytes+len(rec.Payload) > s.cfg.BatchBytes && len(batch) > 0 {
			// Over budget: the record opens the next batch. The Tail has
			// already consumed it, so carry it across.
			return batch, &wr, nil
		}
		batch = append(batch, wr)
		bytes += len(rec.Payload)
	}
	return batch, nil, nil
}

// markRead tracks drain progress: the highest gathered seq and, in Dir
// mode, whether the durable end was reached. Any new record clears the
// drained flag (a freshly rolled segment can extend a directory).
func (s *Sender) markRead(seq uint64, drained bool) {
	s.mu.Lock()
	if seq > s.lastRead {
		s.lastRead = seq
		s.drained = false
	}
	if drained {
		s.drained = true
	}
	s.mu.Unlock()
}

// readAck reads frames until a ReplAck arrives, skipping decode errors
// and advisory ErrorMsg frames (the standby pairs every NACKed batch
// with an ErrorMsg on its generic error path).
func (s *Sender) readAck(conn net.Conn) (*wire.ReplAck, error) {
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			if wire.IsDecodeError(err) {
				s.cfg.Logf("replica: dropping bad frame: %v", err)
				continue
			}
			return nil, fmt.Errorf("replica: read ack: %w", err)
		}
		switch m := msg.(type) {
		case *wire.ReplAck:
			return m, nil
		case *wire.ErrorMsg:
			s.cfg.Logf("replica: standby error: %s", m.Detail)
		default:
			s.cfg.Logf("replica: ignoring %q", msg.Type())
		}
	}
}

// install publishes the live connection for Close to interrupt; it
// refuses when the sender is already closed.
func (s *Sender) install(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conn = conn
	return true
}

// uninstall retires conn and closes it.
func (s *Sender) uninstall(conn net.Conn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
	}
	s.mu.Unlock()
	_ = conn.Close()
}

func (s *Sender) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Sender) setAcked(seq uint64) {
	s.mu.Lock()
	if seq > s.acked {
		s.acked = seq
	}
	s.mu.Unlock()
}

// lagRecords computes how many durable records the standby has not yet
// acknowledged.
func (s *Sender) lagRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	tail := s.lastRead
	if s.cfg.Journal != nil {
		tail = s.cfg.Journal.LastSeq()
	}
	if tail <= s.acked {
		return 0
	}
	return int(tail - s.acked)
}

// Close stops the sender: the live connection is torn down and Run
// returns ErrSenderClosed once its current operation unblocks.
func (s *Sender) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn := s.conn
	s.conn = nil
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// backoff computes the capped exponential backoff with deterministic
// jitter for the k-th retry (1-based), mirroring the agent's schedule.
func backoff(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}
