package replica

import "github.com/nomloc/nomloc/internal/telemetry"

// senderMetrics instruments the replication stream. A nil receiver
// (telemetry off) makes every method a no-op, matching the repo-wide
// instrument-set idiom.
type senderMetrics struct {
	records  *telemetry.Counter
	batches  *telemetry.Counter
	connects *telemetry.Counter
	lagGauge *telemetry.Gauge
}

// newSenderMetrics builds the sender instrument set on reg, or nil when
// telemetry is off.
func newSenderMetrics(reg *telemetry.Registry) *senderMetrics {
	if reg == nil {
		return nil
	}
	return &senderMetrics{
		records:  reg.Counter("nomloc_repl_sent_records_total", "journal records shipped to the standby"),
		batches:  reg.Counter("nomloc_repl_sent_batches_total", "replication batches shipped to the standby"),
		connects: reg.Counter("nomloc_repl_connects_total", "replication connections established"),
		lagGauge: reg.Gauge("nomloc_repl_lag_records", "durable records not yet acknowledged by the standby"),
	}
}

// sent records one acknowledged batch of n records.
func (m *senderMetrics) sent(n int) {
	if m == nil {
		return
	}
	m.records.Add(uint64(n))
	m.batches.Inc()
}

// connect counts one established replication connection.
func (m *senderMetrics) connect() {
	if m == nil {
		return
	}
	m.connects.Inc()
}

// lag publishes the current replication lag in records.
func (m *senderMetrics) lag(n int) {
	if m == nil {
		return
	}
	m.lagGauge.Set(float64(n))
}
