package replica

// Sender/Applier unit tests against a scripted fake standby, so each
// protocol obligation — exactly-once ordered delivery, resume after a
// dropped link, terminal fencing, dir-mode drains — is pinned without
// the full server in the loop (the real-server integration lives in
// internal/server and internal/chaos).

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/wire"
)

// fakeStandby speaks the standby side of the replication protocol with
// scripted behavior.
type fakeStandby struct {
	t     *testing.T
	ln    net.Listener
	epoch uint64 // epoch announced in acks
	fence bool   // nack everything as fenced
	// dropAfter closes the connection after acking this many batches on
	// it (0 = never), forcing the sender through a reconnect.
	dropAfter int

	mu      sync.Mutex
	applied []wire.ReplRecord // exactly-once, in-order record log
	hellos  int
}

func newFakeStandby(t *testing.T, epoch uint64) *fakeStandby {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeStandby{t: t, ln: ln, epoch: epoch}
	go f.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return f
}

func (f *fakeStandby) addr() string { return f.ln.Addr().String() }

func (f *fakeStandby) floor() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.applied); n > 0 {
		return f.applied[n-1].Seq
	}
	return 0
}

func (f *fakeStandby) records() []wire.ReplRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]wire.ReplRecord(nil), f.applied...)
}

func (f *fakeStandby) helloCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hellos
}

func (f *fakeStandby) acceptLoop() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		go f.serve(conn)
	}
}

func (f *fakeStandby) serve(conn net.Conn) {
	defer conn.Close()
	batches := 0
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *wire.ReplHello:
			f.mu.Lock()
			f.hellos++
			f.mu.Unlock()
			if f.fence {
				_ = wire.WriteMessage(conn, &wire.ReplAck{OK: false, Epoch: f.epoch, Detail: "fenced: stale epoch"})
				return
			}
			_ = wire.WriteMessage(conn, &wire.ReplAck{OK: true, Epoch: f.epoch, Seq: f.floor()})
		case *wire.ReplBatch:
			if f.fence {
				_ = wire.WriteMessage(conn, &wire.ReplAck{OK: false, Epoch: f.epoch, Detail: "fenced: stale epoch"})
				return
			}
			f.mu.Lock()
			for _, r := range m.Records {
				last := uint64(0)
				if n := len(f.applied); n > 0 {
					last = f.applied[n-1].Seq
				}
				if r.Seq <= last {
					continue // re-sent tail: absorbed idempotently
				}
				if r.Seq != last+1 {
					f.t.Errorf("fake standby saw gap: seq %d after %d", r.Seq, last)
				}
				f.applied = append(f.applied, r)
			}
			f.mu.Unlock()
			_ = wire.WriteMessage(conn, &wire.ReplAck{OK: true, Epoch: f.epoch, Seq: f.floor()})
			batches++
			if f.dropAfter > 0 && batches >= f.dropAfter {
				return // drop the link; the sender must reconnect and resume
			}
		}
	}
}

// seedJournal opens a journal in dir and appends meta plus n report
// records, returning it still open.
func seedJournal(t *testing.T, dir string, n int) *journal.Journal {
	t.Helper()
	j, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMeta(journal.Meta{ServerID: "svc", MaxNomadicSites: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.AppendReport("obj1", &wire.CSIReport{RoundID: uint64(i + 1), APID: "ap1"}); err != nil {
			t.Fatal(err)
		}
	}
	return j
}

// runSender starts snd.Run in a goroutine and returns a channel with its
// result.
func runSender(snd *Sender) chan error {
	done := make(chan error, 1)
	go func() { done <- snd.Run() }()
	return done
}

// waitCaught polls until the sender reports the standby caught up.
func waitCaught(t *testing.T, snd *Sender) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !snd.Caught() {
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up (acked %d)", snd.Acked())
		}
		time.Sleep(time.Millisecond)
	}
}

// checkMirrors fails unless the fake standby holds exactly the journal's
// records, in order.
func checkMirrors(t *testing.T, f *fakeStandby, dir string) {
	t.Helper()
	tail, err := journal.TailDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	got := f.records()
	i := 0
	for {
		rec, done, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if i >= len(got) {
			t.Fatalf("standby holds %d records, journal has more (at seq %d)", len(got), rec.Seq)
		}
		if got[i].Seq != rec.Seq || got[i].Kind != uint8(rec.Kind) || string(got[i].Payload) != string(rec.Payload) {
			t.Fatalf("record %d differs: standby (seq %d kind %d) vs journal (seq %d kind %d)",
				i, got[i].Seq, got[i].Kind, rec.Seq, rec.Kind)
		}
		i++
	}
	if i != len(got) {
		t.Fatalf("standby holds %d records, journal holds %d", len(got), i)
	}
}

func TestApplierContiguity(t *testing.T) {
	a := NewApplier(nil)
	meta := journal.Record{Seq: 1, Kind: journal.KindMeta, Payload: []byte(`{"serverId":"svc"}`)}
	if err := a.Apply(meta); err != nil {
		t.Fatal(err)
	}
	// Duplicate and gap are both typed ErrSeqGap.
	if err := a.Apply(meta); !errors.Is(err, journal.ErrSeqGap) {
		t.Errorf("duplicate apply err = %v, want ErrSeqGap", err)
	}
	gap := journal.Record{Seq: 3, Kind: journal.KindSessionOpen, Payload: []byte(`{"role":"ap","id":"x"}`)}
	if err := a.Apply(gap); !errors.Is(err, journal.ErrSeqGap) {
		t.Errorf("gap apply err = %v, want ErrSeqGap", err)
	}
	if a.Seq() != 1 {
		t.Errorf("floor = %d, want 1 (rejected records must not advance it)", a.Seq())
	}
}

func TestSenderStreamsLiveJournal(t *testing.T) {
	dir := t.TempDir()
	j := seedJournal(t, dir, 5)
	defer j.Close()
	f := newFakeStandby(t, 1)

	snd, err := NewSender(Config{
		Journal: j, Addr: f.addr(), ServerID: "svc", Epoch: 1,
		Poll: time.Millisecond, BatchMax: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := runSender(snd)
	waitCaught(t, snd)

	// Records appended while the stream is live follow it out.
	if err := j.AppendReport("obj1", &wire.CSIReport{RoundID: 99, APID: "ap2"}); err != nil {
		t.Fatal(err)
	}
	waitCaught(t, snd)

	snd.Close()
	if err := <-done; !errors.Is(err, ErrSenderClosed) {
		t.Errorf("Run = %v, want ErrSenderClosed", err)
	}
	checkMirrors(t, f, dir)
}

func TestSenderResumesAfterDroppedLink(t *testing.T) {
	dir := t.TempDir()
	j := seedJournal(t, dir, 20)
	defer j.Close()
	f := newFakeStandby(t, 1)
	f.dropAfter = 1 // every connection dies after one acked batch

	snd, err := NewSender(Config{
		Journal: j, Addr: f.addr(), ServerID: "svc", Epoch: 1,
		Poll: time.Millisecond, BatchMax: 4, Seed: 42,
		Sleep: func(time.Duration) {}, // collapse reconnect backoff
	})
	if err != nil {
		t.Fatal(err)
	}
	done := runSender(snd)
	waitCaught(t, snd)
	snd.Close()
	<-done

	if f.helloCount() < 2 {
		t.Errorf("expected multiple sessions, got %d hellos", f.helloCount())
	}
	checkMirrors(t, f, dir) // exactly-once despite re-sent tails
}

func TestSenderFencedIsTerminal(t *testing.T) {
	dir := t.TempDir()
	j := seedJournal(t, dir, 2)
	defer j.Close()
	f := newFakeStandby(t, 7) // standby runs a higher epoch
	f.fence = true

	snd, err := NewSender(Config{
		Journal: j, Addr: f.addr(), ServerID: "svc", Epoch: 3,
		Poll: time.Millisecond, Seed: 42, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-runSender(snd); !errors.Is(err, ErrFenced) {
		t.Errorf("Run = %v, want ErrFenced", err)
	}
	if f.helloCount() != 1 {
		t.Errorf("fenced sender retried: %d hellos", f.helloCount())
	}
}

func TestSenderDirModeDrain(t *testing.T) {
	dir := t.TempDir()
	j := seedJournal(t, dir, 8)
	if err := j.Close(); err != nil { // a dead primary's directory
		t.Fatal(err)
	}
	f := newFakeStandby(t, 1)

	snd, err := NewSender(Config{
		Dir: dir, Addr: f.addr(), ServerID: "svc", Epoch: 1,
		Poll: time.Millisecond, BatchMax: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := runSender(snd)
	waitCaught(t, snd)
	snd.Close()
	<-done
	checkMirrors(t, f, dir)
}

func TestSenderRecordTooLarge(t *testing.T) {
	dir := t.TempDir()
	j := seedJournal(t, dir, 1)
	defer j.Close()
	f := newFakeStandby(t, 1)

	snd, err := NewSender(Config{
		Journal: j, Addr: f.addr(), ServerID: "svc", Epoch: 1,
		Poll: time.Millisecond, BatchBytes: 8, Seed: 42, // meta alone exceeds this
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-runSender(snd); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("Run = %v, want ErrRecordTooLarge", err)
	}
}

func TestSenderConfigValidation(t *testing.T) {
	if _, err := NewSender(Config{Addr: "x"}); err == nil {
		t.Error("no source accepted")
	}
	if _, err := NewSender(Config{Journal: &journal.Journal{}, Dir: "d", Addr: "x"}); err == nil {
		t.Error("two sources accepted")
	}
	if _, err := NewSender(Config{Dir: "d"}); err == nil {
		t.Error("missing addr accepted")
	}
}
