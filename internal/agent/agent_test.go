package agent

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/wire"
)

// testbed spins up a full system on localhost TCP: server, the Lab
// scenario's four APs (AP1 nomadic), and an object.
type testbed struct {
	srv    *server.Server
	addr   string
	scn    *deploy.Scenario
	aps    []*APAgent
	object *ObjectAgent
	wg     sync.WaitGroup
}

func newTestbed(t *testing.T, objPos geom.Vec, positionError float64) *testbed {
	t.Helper()
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Localizer: loc, RoundTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb := &testbed{srv: srv, addr: ln.Addr().String(), scn: scn}
	tb.wg.Add(1)
	go func() {
		defer tb.wg.Done()
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	// Static APs.
	for i, ap := range scn.StaticAPs {
		a, err := DialAP(APConfig{
			ID:         ap.ID,
			ServerAddr: tb.addr,
			Sites:      []geom.Vec{ap.Pos},
			Seed:       int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.aps = append(tb.aps, a)
	}
	// Nomadic AP.
	nom, err := DialAP(APConfig{
		ID:             scn.Nomadic.ID,
		ServerAddr:     tb.addr,
		Sites:          scn.Nomadic.AllSites(),
		Nomadic:        true,
		PositionErrorM: positionError,
		Seed:           99,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.aps = append(tb.aps, nom)
	for _, a := range tb.aps {
		a := a
		tb.wg.Add(1)
		go func() {
			defer tb.wg.Done()
			if err := a.Run(); !errors.Is(err, ErrClosed) {
				t.Errorf("ap run: %v", err)
			}
		}()
	}

	sim, err := scn.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := DialObject(ObjectConfig{
		ID:         "obj1",
		ServerAddr: tb.addr,
		Pos:        objPos,
		Sim:        sim,
		Packets:    9,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.object = obj
	for _, ap := range scn.AllAPsStatic() {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	tb.wg.Add(1)
	go func() {
		defer tb.wg.Done()
		if err := obj.Run(); !errors.Is(err, ErrClosed) {
			t.Errorf("object run: %v", err)
		}
	}()

	t.Cleanup(func() {
		tb.object.Close()
		for _, a := range tb.aps {
			a.Close()
		}
		tb.srv.Shutdown()
		tb.wg.Wait()
	})
	return tb
}

func TestEndToEndSingleRound(t *testing.T) {
	objPos := geom.V(6, 4)
	tb := newTestbed(t, objPos, 0)

	est, err := tb.object.RunRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if est.ObjectID != "obj1" || est.RoundID != 1 {
		t.Errorf("estimate meta = %+v", est)
	}
	if !tb.scn.Area.Contains(est.Pos) {
		t.Errorf("estimate %v outside area", est.Pos)
	}
	if est.NumAnchors != 4 {
		t.Errorf("anchors = %d, want 4 (first round: 4 APs)", est.NumAnchors)
	}
	if d := est.Pos.Dist(objPos); d > 8 {
		t.Errorf("single-round error %v m implausible", d)
	}
}

func TestEndToEndNomadicRoundsImprove(t *testing.T) {
	objPos := geom.V(6, 4)
	tb := newTestbed(t, objPos, 0)

	var first, last wire.Estimate
	var err error
	const rounds = 6
	for r := uint64(1); r <= rounds; r++ {
		est, err2 := tb.object.RunRound(r)
		if err2 != nil {
			t.Fatalf("round %d: %v", r, err2)
		}
		if r == 1 {
			first = est
		}
		last = est
	}
	_ = err

	// As the nomadic AP visits more sites, the anchor count must grow.
	if last.NumAnchors <= first.NumAnchors {
		t.Errorf("anchors did not grow: %d → %d", first.NumAnchors, last.NumAnchors)
	}
	// Over all estimates, the server should have produced one per round.
	ests := tb.srv.Estimates()
	if len(ests) != rounds {
		t.Errorf("server recorded %d estimates, want %d", len(ests), rounds)
	}
	if d := last.Pos.Dist(objPos); d > 6 {
		t.Errorf("final error %v m too large", d)
	}
}

func TestEndToEndWithPositionError(t *testing.T) {
	objPos := geom.V(6, 4)
	tb := newTestbed(t, objPos, 1.5)
	for r := uint64(1); r <= 4; r++ {
		est, err := tb.object.RunRound(r)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if !tb.scn.Area.Contains(est.Pos) {
			t.Errorf("round %d: estimate outside area", r)
		}
	}
}

func TestDialAPValidation(t *testing.T) {
	if _, err := DialAP(APConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty config err = %v", err)
	}
	if _, err := DialAP(APConfig{ID: "x", Sites: []geom.Vec{{X: 1}}, Nomadic: true}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nomadic single-site err = %v", err)
	}
	// Unreachable server.
	if _, err := DialAP(APConfig{ID: "x", ServerAddr: "127.0.0.1:1", Sites: []geom.Vec{{X: 1}}}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestDialObjectValidation(t *testing.T) {
	if _, err := DialObject(ObjectConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty config err = %v", err)
	}
}

func TestRunRoundWithoutAPs(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Localizer: loc})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	defer func() {
		srv.Shutdown()
		<-done
	}()

	sim, err := scn.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := DialObject(ObjectConfig{ID: "o", ServerAddr: ln.Addr().String(), Pos: geom.V(1, 1), Sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	objDone := make(chan struct{})
	go func() {
		defer close(objDone)
		_ = obj.Run()
	}()
	defer func() {
		obj.Close()
		<-objDone
	}()

	if _, err := obj.RunRound(1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("round without APs err = %v", err)
	}
}

func TestAPTruePosTracksMovement(t *testing.T) {
	tb := newTestbed(t, geom.V(6, 4), 0)
	nomadic := tb.aps[len(tb.aps)-1]
	home := nomadic.TruePos()
	// Drive several rounds; the nomadic AP moves after each report.
	for r := uint64(1); r <= 5; r++ {
		if _, err := tb.object.RunRound(r); err != nil {
			t.Fatal(err)
		}
	}
	moved := nomadic.TruePos() != home
	// With a uniform chain over 4 sites, staying home 5 times has
	// probability 4⁻⁵ ≈ 0.1%; treat it as a failure.
	if !moved {
		t.Error("nomadic AP never moved in 5 rounds")
	}
}

func TestViewerReceivesEstimates(t *testing.T) {
	tb := newTestbed(t, geom.V(6, 4), 0)

	viewer, err := DialViewer(ViewerConfig{ID: "dashboard", ServerAddr: tb.addr})
	if err != nil {
		t.Fatal(err)
	}
	viewerDone := make(chan struct{})
	go func() {
		defer close(viewerDone)
		if err := viewer.Run(); !errors.Is(err, ErrClosed) {
			t.Errorf("viewer run: %v", err)
		}
	}()
	defer func() {
		viewer.Close()
		<-viewerDone
	}()

	const rounds = 3
	for r := uint64(1); r <= rounds; r++ {
		if _, err := tb.object.RunRound(r); err != nil {
			t.Fatal(err)
		}
	}
	// The viewer must observe all broadcast estimates.
	seen := map[uint64]bool{}
	for i := 0; i < rounds; i++ {
		select {
		case est := <-viewer.Estimates():
			seen[est.RoundID] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("viewer saw only %d/%d estimates", len(seen), rounds)
		}
	}
	for r := uint64(1); r <= rounds; r++ {
		if !seen[r] {
			t.Errorf("round %d estimate never reached the viewer", r)
		}
	}
}

func TestDialViewerValidation(t *testing.T) {
	if _, err := DialViewer(ViewerConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty config err = %v", err)
	}
	if _, err := DialViewer(ViewerConfig{ID: "v", ServerAddr: "127.0.0.1:1"}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestObjectSetPosTracking(t *testing.T) {
	tb := newTestbed(t, geom.V(6, 4), 0)
	if got := tb.object.Pos(); got != geom.V(6, 4) {
		t.Errorf("Pos = %v", got)
	}
	// Move the object between rounds (tracking use case): subsequent
	// rounds must localize near the new truth.
	newPos := geom.V(3, 6)
	tb.object.SetPos(newPos)
	if got := tb.object.Pos(); got != newPos {
		t.Errorf("Pos after SetPos = %v", got)
	}
	est, err := tb.object.RunRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if d := est.Pos.Dist(newPos); d > 8 {
		t.Errorf("estimate %v is %v m from the moved object", est.Pos, d)
	}
}

func TestCaptureTimeSimulatedClockIsDeterministic(t *testing.T) {
	a := &APAgent{cfg: APConfig{ID: "AP1"}}
	t1 := a.captureTime(3, 7)
	t2 := a.captureTime(3, 7)
	if !t1.Equal(t2) {
		t.Fatalf("simulated capture time not reproducible: %v vs %v", t1, t2)
	}
	if want := captureEpoch.Add(3*time.Second + 7*time.Millisecond); !t1.Equal(want) {
		t.Fatalf("captureTime(3, 7) = %v, want %v", t1, want)
	}
	if !a.captureTime(4, 0).After(t1) {
		t.Fatal("later rounds must stamp later capture times")
	}
}

func TestCaptureTimeHonorsConfiguredClock(t *testing.T) {
	fixed := time.Date(2026, time.January, 2, 3, 4, 5, 0, time.UTC)
	a := &APAgent{cfg: APConfig{ID: "AP1", Clock: func() time.Time { return fixed }}}
	if got := a.captureTime(99, 99); !got.Equal(fixed) {
		t.Fatalf("captureTime with Clock = %v, want %v", got, fixed)
	}
}
