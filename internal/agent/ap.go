// Package agent implements the client tiers of the NomLoc architecture:
// access-point agents (static and nomadic) and the object agent. Agents
// connect to the localization server over the wire protocol; the object
// agent doubles as the physics layer, synthesizing the CSI each AP would
// capture for its probe transmissions (on real hardware the radio channel
// does this job — see DESIGN.md §2).
package agent

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/mobility"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// Agent errors.
var (
	ErrRejected   = errors.New("agent: server rejected hello")
	ErrBadConfig  = errors.New("agent: invalid config")
	ErrClosed     = errors.New("agent: closed")
	ErrNoEstimate = errors.New("agent: no estimate before deadline")
)

// handshake dials the server (through dial, nil meaning plain TCP) and
// performs the hello exchange. A positive timeout arms a timer that
// closes the connection if the exchange stalls — a deadline without a
// wall-clock read, so the agent stays under the determinism contract.
func handshake(dial dialFunc, addr string, hello *wire.Hello, timeout time.Duration) (net.Conn, error) {
	conn, err := dial.orTCP()(addr)
	if err != nil {
		return nil, fmt.Errorf("agent: dial %s: %w", addr, err)
	}
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			_ = conn.Close() //nomloc:errdrop-ok best-effort close on handshake timeout
		})
		defer t.Stop()
	}
	if err := wire.WriteMessage(conn, hello); err != nil {
		_ = conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
		return nil, fmt.Errorf("agent: hello: %w", err)
	}
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		_ = conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
		return nil, fmt.Errorf("agent: hello ack: %w", err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		_ = conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
		return nil, fmt.Errorf("%w: got %q instead of ack", ErrRejected, msg.Type())
	}
	if !ack.OK {
		_ = conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
		return nil, fmt.Errorf("%w: %s", ErrRejected, ack.Detail)
	}
	return conn, nil
}

// APConfig parameterizes an AP agent.
type APConfig struct {
	// ID is the AP identity.
	ID string
	// ServerAddr is the localization server address.
	ServerAddr string
	// ServerAddrs is the failover dial list: the preferred primary
	// first, then standby addresses. When set it replaces ServerAddr.
	// A failed handshake — connection refused, or a standby rejecting
	// agent hellos — rotates to the next address; the fallback order is
	// shuffled per Seed so a fleet does not converge on one standby in
	// the same order.
	ServerAddrs []string
	// Sites are the AP's possible positions. Static APs have exactly one;
	// nomadic APs list home first, then the waypoints.
	Sites []geom.Vec
	// Nomadic enables movement between rounds over Sites.
	Nomadic bool
	// PositionErrorM displaces the *believed* position reported to the
	// server by a uniform-disk error (the paper's ER study). The true
	// position — which physics uses — is unaffected.
	PositionErrorM float64
	// Seed drives the mobility walk and the error injection.
	Seed int64
	// Clock, when set, stamps captured probe frames (real hardware wires
	// time.Now here). When nil, capture timestamps are synthesized
	// deterministically from the round counter and packet sequence — 1 s
	// per round, 1 ms per packet, matching the paper's PING cadence — so
	// replaying the same wire traffic reproduces the same samples bit for
	// bit.
	Clock func() time.Time
	// Telemetry, when set, counts the agent's probe traffic (frames,
	// reports, moves). Counters only — the agent never reads wall time
	// from it — so instrumentation does not perturb determinism.
	Telemetry *telemetry.Registry
	// Logf, when set, receives diagnostic log lines.
	Logf func(format string, args ...any)
	// Dialer, when set, replaces plain TCP dialing (chaos injection,
	// in-memory transports). It is used for the initial connection and
	// every reconnect.
	Dialer func(addr string) (net.Conn, error)
	// MaxReconnects caps reconnect attempts after a lost session. 0 (the
	// default) disables reconnection: Run returns on the first read error,
	// preserving the pre-chaos contract.
	MaxReconnects int
	// ReconnectBase and ReconnectMax bound the capped exponential backoff
	// between reconnect attempts (defaults 10 ms and 1 s). Jitter is drawn
	// from a stream derived from Seed, so retry timing is reproducible.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Sleep, when set, replaces time.Sleep between reconnect attempts
	// (tests collapse the backoff to zero).
	Sleep func(time.Duration)
	// HandshakeTimeout bounds the dial-to-ack exchange of each connection
	// attempt. 0 disables the deadline.
	HandshakeTimeout time.Duration
	// RetryClock and ReconnectResetAfter govern backoff forgiveness: the
	// reconnect schedule escalates across loss events (a flapping session
	// no longer restarts at the base interval every time) and resets only
	// after the session stayed healthy for ReconnectResetAfter, measured
	// on RetryClock. Leaving either unset keeps the old per-loss reset.
	// RetryClock is deliberately separate from Clock so enabling the
	// reset does not perturb capture-timestamp determinism.
	RetryClock          func() time.Time
	ReconnectResetAfter time.Duration
}

// captureEpoch is the base timestamp of simulated capture time, shared
// with the evaluation harness's synthesized batches.
var captureEpoch = time.Date(2014, time.June, 30, 12, 0, 0, 0, time.UTC)

// captureTime stamps one captured probe frame: the configured Clock when
// present, simulated time derived from (round, seq) otherwise.
func (a *APAgent) captureTime(roundID, seq uint64) time.Time {
	if a.cfg.Clock != nil {
		return a.cfg.Clock()
	}
	return captureEpoch.Add(time.Duration(roundID)*time.Second + time.Duration(seq)*time.Millisecond)
}

// APAgent is a connected access point.
type APAgent struct {
	cfg      APConfig
	chain    *mobility.Chain
	rng      *rand.Rand
	retryRng *rand.Rand // backoff jitter; used only by the Run goroutine
	dial     *dialList  // failover rotation; used only by the dial path
	retry    retryState // backoff escalation; used only by the dial path
	metrics  apMetrics

	mu       sync.Mutex
	writeMu  sync.Mutex
	conn     net.Conn // replaced on reconnect; snapshot under mu
	curSite  int
	believed geom.Vec
	rounds   map[uint64]*apRound
	tail     []*tailEntry // unacknowledged reports, oldest first
	closed   bool

	done chan struct{}
}

// tailEntry is one report awaiting its ReportAck.
type tailEntry struct {
	rep  *wire.CSIReport
	sent bool // a prior send attempt happened (re-sends count separately)
}

// apRound accumulates one round's probe frames.
type apRound struct {
	packets  int // 0 until RoundStart arrives
	samples  []csi.Sample
	reported bool
}

// DialAP connects an AP agent to the server and registers it. Call Run to
// process traffic.
func DialAP(cfg APConfig) (*APAgent, error) {
	if cfg.ID == "" || len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("%w: need id and at least one site", ErrBadConfig)
	}
	if cfg.Nomadic && len(cfg.Sites) < 2 {
		return nil, fmt.Errorf("%w: nomadic AP needs ≥ 2 sites", ErrBadConfig)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	dial, err := newDialList(cfg.ServerAddr, cfg.ServerAddrs, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	a := &APAgent{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		retryRng: retryRNG(cfg.Seed),
		dial:     dial,
		metrics:  newAPMetrics(cfg.Telemetry, cfg.ID),
		rounds:   make(map[uint64]*apRound),
		done:     make(chan struct{}),
	}
	if cfg.Nomadic {
		chain, err := mobility.UniformChain(cfg.Sites)
		if err != nil {
			return nil, err
		}
		a.chain = chain
	}
	a.believed, err = mobility.PerturbUniformDisk(cfg.Sites[0], cfg.PositionErrorM, a.rng)
	if err != nil {
		return nil, err
	}

	hello := &wire.Hello{Role: wire.RoleAP, ID: cfg.ID, Pos: cfg.Sites[0], SiteIndex: 0}
	conn, err := handshake(cfg.Dialer, a.dial.addr(), hello, cfg.HandshakeTimeout)
	// The initial dial gets the same retry budget as a mid-session loss:
	// under a lossy network there is nothing special about attempt zero.
	for k := 1; err != nil && k <= cfg.MaxReconnects; k++ {
		a.dial.advance()
		cfg.Sleep(backoff(cfg.ReconnectBase, cfg.ReconnectMax, a.retry.next(), a.retryRng))
		conn, err = handshake(cfg.Dialer, a.dial.addr(), hello, cfg.HandshakeTimeout)
	}
	if err != nil {
		return nil, err
	}
	a.retry.onConnect(cfg.RetryClock)
	a.conn = conn
	return a, nil
}

// TruePos returns the AP's current physical position.
func (a *APAgent) TruePos() geom.Vec {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.Sites[a.curSite]
}

// send serializes writes to the server. Failures are typed ErrSessionLost:
// the transport under the current session is gone, and only a reconnect
// (when enabled) brings a new one.
func (a *APAgent) send(msg wire.Message) error {
	a.writeMu.Lock()
	defer a.writeMu.Unlock()
	a.mu.Lock()
	conn := a.conn
	a.mu.Unlock()
	if err := wire.WriteMessage(conn, msg); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrSessionLost, msg.Type(), err)
	}
	return nil
}

// Run processes server traffic until the connection closes and cannot be
// re-established, or Close is called. It always returns a non-nil reason;
// after Close it returns ErrClosed.
func (a *APAgent) Run() error {
	defer close(a.done)
	for {
		a.mu.Lock()
		conn := a.conn
		a.mu.Unlock()
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			if wire.IsDecodeError(err) {
				// Corrupted frame, stream still framed: drop it, keep the
				// session.
				a.cfg.Logf("ap %s: dropping bad frame: %v", a.cfg.ID, err)
				continue
			}
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				return ErrClosed
			}
			if a.reconnect() {
				continue
			}
			return fmt.Errorf("agent: read: %w", err)
		}
		switch m := msg.(type) {
		case *wire.RoundStart:
			a.onRoundStart(m)
		case *wire.ProbeFrame:
			a.onProbeFrame(m)
		case *wire.ReportAck:
			a.onReportAck(m)
		case *wire.ErrorMsg:
			a.cfg.Logf("ap %s: server error: %s", a.cfg.ID, m.Detail)
		default:
			a.cfg.Logf("ap %s: ignoring %q", a.cfg.ID, msg.Type())
		}
	}
}

// reconnect re-establishes the server session after a lost connection:
// up to MaxReconnects handshakes separated by capped exponential backoff
// with seed-deterministic jitter. Escalation persists across loss events
// (see retryState); a failed handshake rotates the failover dial list,
// so agents find the promoted standby after the primary dies. On success
// the new connection replaces the old one and the unacknowledged report
// tail is re-sent. It returns false when reconnection is disabled,
// exhausted, or the agent closed.
func (a *APAgent) reconnect() bool {
	if a.cfg.MaxReconnects <= 0 {
		return false
	}
	a.retry.onLoss(a.cfg.RetryClock, a.cfg.ReconnectResetAfter)
	a.mu.Lock()
	old := a.conn
	site := a.curSite
	believed := a.believed
	a.mu.Unlock()
	_ = old.Close() //nomloc:errdrop-ok the old transport is already dead; closing is best-effort
	for attempt := 1; attempt <= a.cfg.MaxReconnects; attempt++ {
		a.cfg.Sleep(backoff(a.cfg.ReconnectBase, a.cfg.ReconnectMax, a.retry.next(), a.retryRng))
		a.mu.Lock()
		closed := a.closed
		a.mu.Unlock()
		if closed {
			return false
		}
		addr := a.dial.addr()
		conn, err := handshake(a.cfg.Dialer, addr, &wire.Hello{
			Role: wire.RoleAP, ID: a.cfg.ID, Pos: believed, SiteIndex: site,
		}, a.cfg.HandshakeTimeout)
		if err != nil {
			a.dial.advance()
			a.cfg.Logf("ap %s: reconnect %d/%d to %s: %v", a.cfg.ID, attempt, a.cfg.MaxReconnects, addr, err)
			continue
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			_ = conn.Close() //nomloc:errdrop-ok best-effort close; the agent is shutting down
			return false
		}
		a.conn = conn
		a.mu.Unlock()
		a.retry.onConnect(a.cfg.RetryClock)
		a.metrics.reconnects.Inc()
		a.cfg.Logf("ap %s: reconnected to %s on attempt %d", a.cfg.ID, addr, attempt)
		a.flushTail()
		return true
	}
	return false
}

// onReportAck clears the acknowledged report from the unacked tail.
func (a *APAgent) onReportAck(m *wire.ReportAck) {
	if m.APID != a.cfg.ID {
		return
	}
	a.mu.Lock()
	kept := a.tail[:0]
	for _, e := range a.tail {
		if e.rep.RoundID == m.RoundID && e.rep.SiteIndex == m.SiteIndex {
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(a.tail); i++ {
		a.tail[i] = nil
	}
	a.tail = kept
	a.mu.Unlock()
}

// flushTail sends every unacknowledged report oldest-first, stopping at
// the first failure (the tail survives for the next flush). First-time
// sends count as reports, repeats as re-sends.
func (a *APAgent) flushTail() {
	a.mu.Lock()
	reps := make([]*wire.CSIReport, len(a.tail))
	again := make([]bool, len(a.tail))
	for i, e := range a.tail {
		reps[i] = e.rep
		again[i] = e.sent
		e.sent = true
	}
	a.mu.Unlock()
	for i, rep := range reps {
		if err := a.send(rep); err != nil {
			a.cfg.Logf("ap %s: report %d: %v", a.cfg.ID, rep.RoundID, err)
			return
		}
		if again[i] {
			a.metrics.resends.Inc()
		} else {
			a.metrics.reports.Inc()
		}
	}
}

// Close shuts the agent down and waits for Run to exit.
func (a *APAgent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return
	}
	a.closed = true
	conn := a.conn
	a.mu.Unlock()
	_ = conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
	<-a.done
}

func (a *APAgent) onRoundStart(m *wire.RoundStart) {
	a.mu.Lock()
	r := a.rounds[m.RoundID]
	if r == nil {
		r = &apRound{}
		a.rounds[m.RoundID] = r
	}
	r.packets = m.Packets
	ready := r.readyLocked()
	a.mu.Unlock()
	if ready {
		a.report(m.RoundID)
	}
}

func (a *APAgent) onProbeFrame(m *wire.ProbeFrame) {
	if m.To != a.cfg.ID {
		return
	}
	a.mu.Lock()
	r := a.rounds[m.RoundID]
	if r == nil {
		r = &apRound{}
		a.rounds[m.RoundID] = r
	}
	r.samples = append(r.samples, csi.Sample{
		APID:       a.cfg.ID,
		Seq:        m.Seq,
		CapturedAt: a.captureTime(m.RoundID, m.Seq),
		RSSI:       m.RSSI,
		CSI:        m.CSI,
	})
	a.metrics.frames.Inc()
	ready := r.readyLocked()
	a.mu.Unlock()
	if ready {
		a.report(m.RoundID)
	}
}

// readyLocked reports whether the round has all frames and a known burst
// length and has not been reported yet. Callers must hold the agent mutex.
func (r *apRound) readyLocked() bool {
	return !r.reported && r.packets > 0 && len(r.samples) >= r.packets
}

// report sends the accumulated burst to the server and, for nomadic APs,
// moves to the next waypoint.
func (a *APAgent) report(roundID uint64) {
	a.mu.Lock()
	r := a.rounds[roundID]
	if r == nil || r.reported {
		a.mu.Unlock()
		return
	}
	r.reported = true
	samples := r.samples
	site := a.curSite
	believed := a.believed
	delete(a.rounds, roundID)
	rep := &wire.CSIReport{
		RoundID:   roundID,
		APID:      a.cfg.ID,
		SiteIndex: site,
		Pos:       believed,
		Nomadic:   a.cfg.Nomadic,
		Batch:     csi.Batch{APID: a.cfg.ID, SiteIndex: site, Samples: samples},
	}
	a.tail = append(a.tail, &tailEntry{rep: rep})
	if drop := len(a.tail) - maxUnackedReports; drop > 0 {
		a.tail = append(a.tail[:0], a.tail[drop:]...)
	}
	a.mu.Unlock()

	a.flushTail()
	// The mobility walk advances whether or not the report was delivered:
	// position is physics, not transport, and keeping the walk purely
	// seed-driven is what lets a healed chaos run converge back to the
	// fault-free golden estimates.
	if a.cfg.Nomadic {
		a.move()
	}
}

// move steps the mobility chain and announces the new position. The
// announcement carries the TRUE position (it feeds the object's physics);
// the believed position used in reports picks up the configured error.
func (a *APAgent) move() {
	a.mu.Lock()
	next, err := a.chain.Step(a.curSite, a.rng)
	if err != nil {
		a.mu.Unlock()
		a.cfg.Logf("ap %s: move: %v", a.cfg.ID, err)
		return
	}
	a.curSite = next
	truePos := a.cfg.Sites[next]
	a.believed, err = mobility.PerturbUniformDisk(truePos, a.cfg.PositionErrorM, a.rng)
	if err != nil {
		a.believed = truePos
	}
	site := a.curSite
	a.mu.Unlock()

	a.metrics.moves.Inc()
	if err := a.send(&wire.PositionUpdate{APID: a.cfg.ID, SiteIndex: site, Pos: truePos}); err != nil {
		a.cfg.Logf("ap %s: position update: %v", a.cfg.ID, err)
	}
}
