package agent

import (
	"errors"
	"math/rand"
	"net"
	"time"

	"github.com/nomloc/nomloc/internal/parallel"
)

// ErrSessionLost marks a write that failed because the server session is
// gone (reset, partition, or plain disconnect). Agents with reconnection
// enabled recover from it; callers can errors.Is against it to tell a
// transport loss from a protocol rejection.
var ErrSessionLost = errors.New("agent: session lost")

// Reconnect defaults and bounds.
const (
	defaultReconnectBase = 10 * time.Millisecond
	defaultReconnectMax  = time.Second
	// maxUnackedReports bounds the AP's unacknowledged report tail; the
	// oldest reports are dropped first (the server's accumulated history
	// makes an old lost report the least damaging kind).
	maxUnackedReports = 32
	// retryStream tags the RNG stream that jitters reconnect backoff,
	// keeping it disjoint from the mobility/noise stream of the same seed.
	retryStream = 0x7e7a11
	// failoverStream tags the RNG stream that shuffles the failover
	// address rotation, disjoint from retryStream so adding fallback
	// addresses does not perturb retry jitter.
	failoverStream = 0xfa110e
)

// dialFunc dials the server; the zero value means plain TCP.
type dialFunc func(addr string) (net.Conn, error)

// orTCP returns d, or the plain TCP dialer when d is nil.
func (d dialFunc) orTCP() dialFunc {
	if d != nil {
		return d
	}
	return func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
}

// backoff computes the capped exponential backoff with deterministic
// jitter for the k-th reconnect attempt (1-based): base·2^(k−1) clamped
// to max, scaled into [50%, 100%] by the seeded retry stream.
func backoff(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		base = defaultReconnectBase
	}
	if max <= 0 {
		max = defaultReconnectMax
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// retryRNG derives the backoff-jitter stream for an agent seed.
func retryRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(parallel.MixSeed(seed, retryStream, 0)))
}

// dialList is the agent's failover address rotation: the configured
// primary first, then the fallbacks in a seed-shuffled order, so a fleet
// sharing one config does not converge on the same standby in the same
// order. The cursor is sticky — a working address keeps serving across
// reconnects — and advances only when a handshake against it fails
// (connection refused, or a standby rejecting agent hellos). Used only
// by the owning agent's dial path; it needs no locking.
type dialList struct {
	addrs []string
	cur   int
}

// newDialList builds the rotation from the single-address field and the
// failover list (the list wins when both are set; its first entry is the
// preferred primary and is never shuffled).
func newDialList(primary string, fallbacks []string, seed int64) (*dialList, error) {
	list := append([]string(nil), fallbacks...)
	if len(list) == 0 && primary != "" {
		list = []string{primary}
	}
	if len(list) == 0 {
		return nil, errors.New("agent: need a server address")
	}
	if len(list) > 2 {
		rng := rand.New(rand.NewSource(parallel.MixSeed(seed, failoverStream, 0)))
		rng.Shuffle(len(list)-1, func(i, j int) { list[i+1], list[j+1] = list[j+1], list[i+1] })
	}
	return &dialList{addrs: list}, nil
}

// addr returns the current dial target.
func (d *dialList) addr() string { return d.addrs[d.cur] }

// advance rotates to the next address after a failed handshake.
func (d *dialList) advance() { d.cur = (d.cur + 1) % len(d.addrs) }

// retryState tracks reconnect escalation across loss events. The old
// schedule restarted at attempt 1 on every loss, so a session that
// flapped — connected, then died moments later — reset its backoff each
// time and hammered the server at the base interval forever. The attempt
// counter now persists across loss events and resets only after the
// session stayed healthy for resetAfter, measured on the injected clock.
// Without a clock (or with resetAfter 0) every loss still starts a fresh
// schedule, preserving the pre-failover contract for deterministic runs.
type retryState struct {
	attempt     int
	connectedAt time.Time
}

// onLoss updates escalation when a session dies: a sustained healthy
// period forgives past flapping, anything shorter escalates from where
// the last schedule left off.
func (r *retryState) onLoss(clock func() time.Time, resetAfter time.Duration) {
	if clock == nil || resetAfter <= 0 {
		r.attempt = 0
		return
	}
	if !r.connectedAt.IsZero() && clock().Sub(r.connectedAt) >= resetAfter {
		r.attempt = 0
	}
}

// next claims the next attempt number (1-based) for backoff.
func (r *retryState) next() int {
	r.attempt++
	return r.attempt
}

// onConnect records the clock reading of a successful handshake.
func (r *retryState) onConnect(clock func() time.Time) {
	if clock != nil {
		r.connectedAt = clock()
	}
}
