package agent

import (
	"errors"
	"math/rand"
	"net"
	"time"

	"github.com/nomloc/nomloc/internal/parallel"
)

// ErrSessionLost marks a write that failed because the server session is
// gone (reset, partition, or plain disconnect). Agents with reconnection
// enabled recover from it; callers can errors.Is against it to tell a
// transport loss from a protocol rejection.
var ErrSessionLost = errors.New("agent: session lost")

// Reconnect defaults and bounds.
const (
	defaultReconnectBase = 10 * time.Millisecond
	defaultReconnectMax  = time.Second
	// maxUnackedReports bounds the AP's unacknowledged report tail; the
	// oldest reports are dropped first (the server's accumulated history
	// makes an old lost report the least damaging kind).
	maxUnackedReports = 32
	// retryStream tags the RNG stream that jitters reconnect backoff,
	// keeping it disjoint from the mobility/noise stream of the same seed.
	retryStream = 0x7e7a11
)

// dialFunc dials the server; the zero value means plain TCP.
type dialFunc func(addr string) (net.Conn, error)

// orTCP returns d, or the plain TCP dialer when d is nil.
func (d dialFunc) orTCP() dialFunc {
	if d != nil {
		return d
	}
	return func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
}

// backoff computes the capped exponential backoff with deterministic
// jitter for the k-th reconnect attempt (1-based): base·2^(k−1) clamped
// to max, scaled into [50%, 100%] by the seeded retry stream.
func backoff(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		base = defaultReconnectBase
	}
	if max <= 0 {
		max = defaultReconnectMax
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// retryRNG derives the backoff-jitter stream for an agent seed.
func retryRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(parallel.MixSeed(seed, retryStream, 0)))
}
