package agent

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// ObjectConfig parameterizes the object agent.
type ObjectConfig struct {
	// ID is the object identity.
	ID string
	// ServerAddr is the localization server address.
	ServerAddr string
	// Pos is the object's true position (what the system should find).
	Pos geom.Vec
	// Sim is the channel physics used to synthesize the CSI each AP
	// captures for the object's probes.
	Sim *channel.Simulator
	// Packets is the burst length per round. Defaults to 25.
	Packets int
	// RoundTimeout bounds the wait for the server's estimate. Defaults
	// to 10 s.
	RoundTimeout time.Duration
	// Seed drives measurement noise.
	Seed int64
	// Telemetry, when set, counts the agent's probe traffic (rounds,
	// probes, estimates). Counters only — the agent never reads wall time
	// from it — so instrumentation does not perturb determinism.
	Telemetry *telemetry.Registry
	// Logf, when set, receives diagnostic log lines.
	Logf func(format string, args ...any)
}

// ObjectAgent is the connected object: it transmits probe bursts and
// receives location estimates.
type ObjectAgent struct {
	cfg     ObjectConfig
	conn    net.Conn
	rng     *rand.Rand
	metrics objMetrics

	mu      sync.Mutex
	writeMu sync.Mutex
	apPos   map[string]geom.Vec // true AP positions for physics
	closed  bool

	estimates chan wire.Estimate
	done      chan struct{}
}

// DialObject connects the object agent and registers it. Call Run (in a
// goroutine) before starting rounds.
func DialObject(cfg ObjectConfig) (*ObjectAgent, error) {
	if cfg.ID == "" || cfg.Sim == nil {
		return nil, fmt.Errorf("%w: need id and simulator", ErrBadConfig)
	}
	if cfg.Packets <= 0 {
		cfg.Packets = 25
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	conn, err := handshake(cfg.ServerAddr, &wire.Hello{Role: wire.RoleObject, ID: cfg.ID})
	if err != nil {
		return nil, err
	}
	return &ObjectAgent{
		cfg:       cfg,
		conn:      conn,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		metrics:   newObjMetrics(cfg.Telemetry, cfg.ID),
		apPos:     make(map[string]geom.Vec),
		estimates: make(chan wire.Estimate, 16),
		done:      make(chan struct{}),
	}, nil
}

// RegisterAP tells the object's physics layer where an AP currently is
// (true position). Nomadic APs keep this fresh via PositionUpdate.
func (o *ObjectAgent) RegisterAP(id string, pos geom.Vec) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.apPos[id] = pos
}

// send serializes writes to the server.
func (o *ObjectAgent) send(msg wire.Message) error {
	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	return wire.WriteMessage(o.conn, msg)
}

// Run processes server traffic until the connection closes or Close is
// called.
func (o *ObjectAgent) Run() error {
	defer close(o.done)
	for {
		msg, err := wire.ReadMessage(o.conn)
		if err != nil {
			o.mu.Lock()
			closed := o.closed
			o.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("agent: read: %w", err)
		}
		switch m := msg.(type) {
		case *wire.PositionUpdate:
			o.mu.Lock()
			o.apPos[m.APID] = m.Pos
			o.mu.Unlock()
		case *wire.Estimate:
			o.metrics.estimates.Inc()
			select {
			case o.estimates <- *m:
			default:
				o.metrics.drops.Inc()
				o.cfg.Logf("object %s: estimate buffer full, dropping round %d", o.cfg.ID, m.RoundID)
			}
		case *wire.ErrorMsg:
			o.cfg.Logf("object %s: server error: %s", o.cfg.ID, m.Detail)
		default:
			o.cfg.Logf("object %s: ignoring %q", o.cfg.ID, msg.Type())
		}
	}
}

// Close shuts the agent down and waits for Run to exit.
func (o *ObjectAgent) Close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		<-o.done
		return
	}
	o.closed = true
	o.mu.Unlock()
	_ = o.conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
	<-o.done
}

// SetPos moves the object (tracking scenarios).
func (o *ObjectAgent) SetPos(p geom.Vec) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg.Pos = p
}

// Pos returns the object's current true position.
func (o *ObjectAgent) Pos() geom.Vec {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cfg.Pos
}

// RunRound executes one measurement round: announce, transmit the probe
// burst to every known AP, and wait for the server's estimate.
func (o *ObjectAgent) RunRound(roundID uint64) (wire.Estimate, error) {
	// Snapshot the AP roster sorted by ID: the probe loop below draws
	// noise from o.rng per transmission, so map order would give every
	// run a different noise-to-AP assignment.
	type apSite struct {
		id  string
		pos geom.Vec
	}
	o.mu.Lock()
	aps := make([]apSite, 0, len(o.apPos))
	for id, p := range o.apPos {
		aps = append(aps, apSite{id: id, pos: p})
	}
	objPos := o.cfg.Pos
	o.mu.Unlock()
	sort.Slice(aps, func(i, j int) bool { return aps[i].id < aps[j].id })
	if len(aps) == 0 {
		return wire.Estimate{}, fmt.Errorf("%w: no APs registered with the object's physics layer", ErrBadConfig)
	}

	if err := o.send(&wire.RoundStart{RoundID: roundID, ObjectID: o.cfg.ID, Packets: o.cfg.Packets}); err != nil {
		return wire.Estimate{}, fmt.Errorf("agent: round start: %w", err)
	}
	o.metrics.rounds.Inc()
	// Transmit the burst: for each packet, every AP hears its own channel
	// realization of the same probe.
	for seq := 0; seq < o.cfg.Packets; seq++ {
		for _, ap := range aps {
			frame := &wire.ProbeFrame{
				RoundID: roundID,
				To:      ap.id,
				Seq:     uint64(seq),
				RSSI:    o.cfg.Sim.RSSI(objPos, ap.pos) + o.rng.NormFloat64()*1.5,
				CSI:     o.cfg.Sim.Measure(objPos, ap.pos, o.rng),
			}
			if err := o.send(frame); err != nil {
				return wire.Estimate{}, fmt.Errorf("agent: probe frame: %w", err)
			}
			o.metrics.probes.Inc()
		}
	}

	deadline := time.NewTimer(o.cfg.RoundTimeout)
	defer deadline.Stop()
	for {
		select {
		case est := <-o.estimates:
			if est.RoundID != roundID {
				// A stale estimate from an earlier round; keep waiting.
				continue
			}
			return est, nil
		case <-deadline.C:
			return wire.Estimate{}, fmt.Errorf("%w: round %d", ErrNoEstimate, roundID)
		case <-o.done:
			return wire.Estimate{}, ErrClosed
		}
	}
}
