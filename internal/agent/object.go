package agent

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// ObjectConfig parameterizes the object agent.
type ObjectConfig struct {
	// ID is the object identity.
	ID string
	// ServerAddr is the localization server address.
	ServerAddr string
	// ServerAddrs is the failover dial list; see APConfig.ServerAddrs.
	ServerAddrs []string
	// Pos is the object's true position (what the system should find).
	Pos geom.Vec
	// Sim is the channel physics used to synthesize the CSI each AP
	// captures for the object's probes.
	Sim *channel.Simulator
	// Packets is the burst length per round. Defaults to 25.
	Packets int
	// RoundTimeout bounds the wait for the server's estimate. Defaults
	// to 10 s.
	RoundTimeout time.Duration
	// Seed drives measurement noise.
	Seed int64
	// Telemetry, when set, counts the agent's probe traffic (rounds,
	// probes, estimates). Counters only — the agent never reads wall time
	// from it — so instrumentation does not perturb determinism.
	Telemetry *telemetry.Registry
	// Logf, when set, receives diagnostic log lines.
	Logf func(format string, args ...any)
	// Dialer, when set, replaces plain TCP dialing (chaos injection,
	// in-memory transports). Used for the initial connection and every
	// reconnect.
	Dialer func(addr string) (net.Conn, error)
	// MaxReconnects caps reconnect attempts after a lost session. 0 (the
	// default) disables reconnection.
	MaxReconnects int
	// ReconnectBase and ReconnectMax bound the capped exponential backoff
	// between reconnect attempts (defaults 10 ms and 1 s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Sleep, when set, replaces time.Sleep between reconnect attempts.
	Sleep func(time.Duration)
	// HandshakeTimeout bounds the dial-to-ack exchange of each connection
	// attempt. 0 disables the deadline.
	HandshakeTimeout time.Duration
	// RetryClock and ReconnectResetAfter govern backoff forgiveness
	// across loss events; see APConfig. Unset keeps the per-loss reset.
	RetryClock          func() time.Time
	ReconnectResetAfter time.Duration
}

// ObjectAgent is the connected object: it transmits probe bursts and
// receives location estimates.
type ObjectAgent struct {
	cfg      ObjectConfig
	rng      *rand.Rand
	retryRng *rand.Rand // backoff jitter; used only by the Run goroutine
	dial     *dialList  // failover rotation; used only by the dial path
	retry    retryState // backoff escalation; used only by the dial path
	metrics  objMetrics

	mu      sync.Mutex
	writeMu sync.Mutex
	conn    net.Conn            // replaced on reconnect; snapshot under mu
	apPos   map[string]geom.Vec // true AP positions for physics
	closed  bool

	estimates chan wire.Estimate
	done      chan struct{}
}

// DialObject connects the object agent and registers it. Call Run (in a
// goroutine) before starting rounds.
func DialObject(cfg ObjectConfig) (*ObjectAgent, error) {
	if cfg.ID == "" || cfg.Sim == nil {
		return nil, fmt.Errorf("%w: need id and simulator", ErrBadConfig)
	}
	if cfg.Packets <= 0 {
		cfg.Packets = 25
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	hello := &wire.Hello{Role: wire.RoleObject, ID: cfg.ID}
	dial, err := newDialList(cfg.ServerAddr, cfg.ServerAddrs, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	o := &ObjectAgent{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		retryRng:  retryRNG(cfg.Seed),
		dial:      dial,
		metrics:   newObjMetrics(cfg.Telemetry, cfg.ID),
		apPos:     make(map[string]geom.Vec),
		estimates: make(chan wire.Estimate, 16),
		done:      make(chan struct{}),
	}
	conn, err := handshake(cfg.Dialer, o.dial.addr(), hello, cfg.HandshakeTimeout)
	// Initial dials share the reconnect budget; see DialAP.
	for k := 1; err != nil && k <= cfg.MaxReconnects; k++ {
		o.dial.advance()
		cfg.Sleep(backoff(cfg.ReconnectBase, cfg.ReconnectMax, o.retry.next(), o.retryRng))
		conn, err = handshake(cfg.Dialer, o.dial.addr(), hello, cfg.HandshakeTimeout)
	}
	if err != nil {
		return nil, err
	}
	o.retry.onConnect(cfg.RetryClock)
	o.conn = conn
	return o, nil
}

// RegisterAP tells the object's physics layer where an AP currently is
// (true position). Nomadic APs keep this fresh via PositionUpdate.
func (o *ObjectAgent) RegisterAP(id string, pos geom.Vec) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.apPos[id] = pos
}

// send serializes writes to the server. Failures are typed ErrSessionLost.
func (o *ObjectAgent) send(msg wire.Message) error {
	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	o.mu.Lock()
	conn := o.conn
	o.mu.Unlock()
	if err := wire.WriteMessage(conn, msg); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrSessionLost, msg.Type(), err)
	}
	return nil
}

// Run processes server traffic until the connection closes and cannot be
// re-established, or Close is called.
func (o *ObjectAgent) Run() error {
	defer close(o.done)
	for {
		o.mu.Lock()
		conn := o.conn
		o.mu.Unlock()
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			if wire.IsDecodeError(err) {
				o.cfg.Logf("object %s: dropping bad frame: %v", o.cfg.ID, err)
				continue
			}
			o.mu.Lock()
			closed := o.closed
			o.mu.Unlock()
			if closed {
				return ErrClosed
			}
			if o.reconnect() {
				continue
			}
			return fmt.Errorf("agent: read: %w", err)
		}
		switch m := msg.(type) {
		case *wire.PositionUpdate:
			o.mu.Lock()
			o.apPos[m.APID] = m.Pos
			o.mu.Unlock()
		case *wire.Estimate:
			o.metrics.estimates.Inc()
			select {
			case o.estimates <- *m:
			default:
				o.metrics.drops.Inc()
				o.cfg.Logf("object %s: estimate buffer full, dropping round %d", o.cfg.ID, m.RoundID)
			}
		case *wire.ErrorMsg:
			o.cfg.Logf("object %s: server error: %s", o.cfg.ID, m.Detail)
		default:
			o.cfg.Logf("object %s: ignoring %q", o.cfg.ID, msg.Type())
		}
	}
}

// reconnect re-establishes the object's server session; see the AP
// version for the backoff contract. In-flight rounds are not replayed —
// RunRound's caller sees its timeout and retries at round granularity.
func (o *ObjectAgent) reconnect() bool {
	if o.cfg.MaxReconnects <= 0 {
		return false
	}
	o.retry.onLoss(o.cfg.RetryClock, o.cfg.ReconnectResetAfter)
	o.mu.Lock()
	old := o.conn
	o.mu.Unlock()
	_ = old.Close() //nomloc:errdrop-ok the old transport is already dead; closing is best-effort
	for attempt := 1; attempt <= o.cfg.MaxReconnects; attempt++ {
		o.cfg.Sleep(backoff(o.cfg.ReconnectBase, o.cfg.ReconnectMax, o.retry.next(), o.retryRng))
		o.mu.Lock()
		closed := o.closed
		o.mu.Unlock()
		if closed {
			return false
		}
		addr := o.dial.addr()
		conn, err := handshake(o.cfg.Dialer, addr,
			&wire.Hello{Role: wire.RoleObject, ID: o.cfg.ID}, o.cfg.HandshakeTimeout)
		if err != nil {
			o.dial.advance()
			o.cfg.Logf("object %s: reconnect %d/%d to %s: %v", o.cfg.ID, attempt, o.cfg.MaxReconnects, addr, err)
			continue
		}
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			_ = conn.Close() //nomloc:errdrop-ok best-effort close; the agent is shutting down
			return false
		}
		o.conn = conn
		o.mu.Unlock()
		o.retry.onConnect(o.cfg.RetryClock)
		o.metrics.reconnects.Inc()
		o.cfg.Logf("object %s: reconnected to %s on attempt %d", o.cfg.ID, addr, attempt)
		return true
	}
	return false
}

// Close shuts the agent down and waits for Run to exit.
func (o *ObjectAgent) Close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		<-o.done
		return
	}
	o.closed = true
	conn := o.conn
	o.mu.Unlock()
	_ = conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
	<-o.done
}

// SetPos moves the object (tracking scenarios).
func (o *ObjectAgent) SetPos(p geom.Vec) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg.Pos = p
}

// Pos returns the object's current true position.
func (o *ObjectAgent) Pos() geom.Vec {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cfg.Pos
}

// RunRound executes one measurement round: announce, transmit the probe
// burst to every known AP, and wait for the server's estimate.
func (o *ObjectAgent) RunRound(roundID uint64) (wire.Estimate, error) {
	// Snapshot the AP roster sorted by ID: the probe loop below draws
	// noise from o.rng per transmission, so map order would give every
	// run a different noise-to-AP assignment.
	type apSite struct {
		id  string
		pos geom.Vec
	}
	o.mu.Lock()
	aps := make([]apSite, 0, len(o.apPos))
	for id, p := range o.apPos {
		aps = append(aps, apSite{id: id, pos: p})
	}
	objPos := o.cfg.Pos
	o.mu.Unlock()
	sort.Slice(aps, func(i, j int) bool { return aps[i].id < aps[j].id })
	if len(aps) == 0 {
		return wire.Estimate{}, fmt.Errorf("%w: no APs registered with the object's physics layer", ErrBadConfig)
	}

	if err := o.send(&wire.RoundStart{RoundID: roundID, ObjectID: o.cfg.ID, Packets: o.cfg.Packets}); err != nil {
		return wire.Estimate{}, fmt.Errorf("agent: round start: %w", err)
	}
	o.metrics.rounds.Inc()
	// Transmit the burst: for each packet, every AP hears its own channel
	// realization of the same probe.
	for seq := 0; seq < o.cfg.Packets; seq++ {
		for _, ap := range aps {
			frame := &wire.ProbeFrame{
				RoundID: roundID,
				To:      ap.id,
				Seq:     uint64(seq),
				RSSI:    o.cfg.Sim.RSSI(objPos, ap.pos) + o.rng.NormFloat64()*1.5,
				CSI:     o.cfg.Sim.Measure(objPos, ap.pos, o.rng),
			}
			if err := o.send(frame); err != nil {
				return wire.Estimate{}, fmt.Errorf("agent: probe frame: %w", err)
			}
			o.metrics.probes.Inc()
		}
	}

	deadline := time.NewTimer(o.cfg.RoundTimeout)
	defer deadline.Stop()
	for {
		select {
		case est := <-o.estimates:
			if est.RoundID != roundID {
				// A stale estimate from an earlier round; keep waiting.
				continue
			}
			return est, nil
		case <-deadline.C:
			return wire.Estimate{}, fmt.Errorf("%w: round %d", ErrNoEstimate, roundID)
		case <-o.done:
			return wire.Estimate{}, ErrClosed
		}
	}
}
