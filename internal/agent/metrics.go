package agent

import "github.com/nomloc/nomloc/internal/telemetry"

// This file holds the agents' probe-traffic instruments. Everything is a
// plain counter — agents are under nomloc-vet's determinism contract, so
// they count events and never read a clock. With a nil registry every
// field is a nil *telemetry.Counter and each Inc melts into a pointer
// test.

// apMetrics counts one AP agent's traffic.
type apMetrics struct {
	frames     *telemetry.Counter // probe frames captured
	reports    *telemetry.Counter // CSI reports sent
	moves      *telemetry.Counter // nomadic waypoint moves
	reconnects *telemetry.Counter // sessions re-established after a loss
	resends    *telemetry.Counter // unacked reports sent again
}

func newAPMetrics(r *telemetry.Registry, id string) apMetrics {
	l := telemetry.Label{Key: "ap", Value: id}
	return apMetrics{
		frames:     r.Counter("nomloc_ap_frames_total", "probe frames captured by the AP", l),
		reports:    r.Counter("nomloc_ap_reports_total", "CSI reports sent to the server", l),
		moves:      r.Counter("nomloc_ap_moves_total", "nomadic waypoint moves", l),
		reconnects: r.Counter("nomloc_ap_reconnects_total", "AP sessions re-established after a loss", l),
		resends:    r.Counter("nomloc_ap_resends_total", "unacknowledged CSI reports sent again", l),
	}
}

// objMetrics counts one object agent's traffic.
type objMetrics struct {
	probes     *telemetry.Counter // probe frames transmitted
	rounds     *telemetry.Counter // measurement rounds started
	estimates  *telemetry.Counter // estimates received
	drops      *telemetry.Counter // estimates dropped on a full buffer
	reconnects *telemetry.Counter // sessions re-established after a loss
}

func newObjMetrics(r *telemetry.Registry, id string) objMetrics {
	l := telemetry.Label{Key: "object", Value: id}
	return objMetrics{
		probes:     r.Counter("nomloc_object_probes_total", "probe frames transmitted", l),
		rounds:     r.Counter("nomloc_object_rounds_total", "measurement rounds started", l),
		estimates:  r.Counter("nomloc_object_estimates_total", "estimates received", l),
		drops:      r.Counter("nomloc_object_estimate_drops_total", "estimates dropped on a full buffer", l),
		reconnects: r.Counter("nomloc_object_reconnects_total", "object sessions re-established after a loss", l),
	}
}
