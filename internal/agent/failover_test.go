package agent

// Failover dial-list and backoff-escalation tests. The escalation tests
// drive retryState with an injected fake clock — no sleeping, no wall
// time — pinning the regression that a flapping session used to restart
// its backoff schedule at the base interval on every loss event.

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

func TestDialListRotation(t *testing.T) {
	if _, err := newDialList("", nil, 1); err == nil {
		t.Error("empty dial list accepted")
	}

	// Single address wraps onto itself.
	d, err := newDialList("a:1", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.advance()
	if d.addr() != "a:1" {
		t.Errorf("single-address rotation moved to %q", d.addr())
	}

	// The list form wins over the single field, keeps the primary first,
	// and visits every address before wrapping.
	d, err = newDialList("ignored:0", []string{"p:1", "s:2", "s:3"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.addr() != "p:1" {
		t.Errorf("primary = %q, want p:1 (first entry is never shuffled)", d.addr())
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		seen[d.addr()] = true
		d.advance()
	}
	if !seen["p:1"] || !seen["s:2"] || !seen["s:3"] || d.addr() != "p:1" {
		t.Errorf("rotation did not cycle all addresses back to the primary: %v, now at %q", seen, d.addr())
	}

	// The fallback shuffle is a pure function of the seed.
	a1, _ := newDialList("", []string{"p", "x", "y", "z"}, 42)
	a2, _ := newDialList("", []string{"p", "x", "y", "z"}, 42)
	for i := range a1.addrs {
		if a1.addrs[i] != a2.addrs[i] {
			t.Fatalf("same seed shuffled differently: %v vs %v", a1.addrs, a2.addrs)
		}
	}
}

// TestRetryStateEscalatesAcrossFlaps: with a clock and a reset window,
// the attempt counter carries across loss events while the session keeps
// flapping, and resets only after a sustained healthy period.
func TestRetryStateEscalatesAcrossFlaps(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	const resetAfter = 10 * time.Second

	var r retryState
	// First loss event: three failed attempts, then success.
	r.onLoss(clock, resetAfter)
	for want := 1; want <= 3; want++ {
		if got := r.next(); got != want {
			t.Fatalf("attempt = %d, want %d", got, want)
		}
	}
	r.onConnect(clock)

	// The session dies 1 s later — a flap. The schedule must continue
	// from attempt 4, not restart at 1.
	now = now.Add(time.Second)
	r.onLoss(clock, resetAfter)
	if got := r.next(); got != 4 {
		t.Errorf("flapping session restarted backoff: attempt = %d, want 4", got)
	}
	r.onConnect(clock)

	// This time the session stays healthy past the reset window before
	// dying: past sins are forgiven and the schedule starts over.
	now = now.Add(resetAfter + time.Second)
	r.onLoss(clock, resetAfter)
	if got := r.next(); got != 1 {
		t.Errorf("healthy period did not reset backoff: attempt = %d, want 1", got)
	}
}

// TestRetryStateLegacyReset: without a clock (or without a window) every
// loss event starts a fresh schedule — the pre-failover contract that
// deterministic chaos runs depend on.
func TestRetryStateLegacyReset(t *testing.T) {
	var r retryState
	r.onLoss(nil, time.Minute)
	r.next()
	r.next()
	r.onLoss(nil, time.Minute)
	if got := r.next(); got != 1 {
		t.Errorf("nil clock: attempt = %d, want 1", got)
	}

	clock := func() time.Time { return time.Unix(99, 0) }
	r.next()
	r.onLoss(clock, 0)
	if got := r.next(); got != 1 {
		t.Errorf("zero window: attempt = %d, want 1", got)
	}
}

// flappyServer accepts connections, completes the hello handshake, and
// then immediately drops each connection until `stable` is set — an
// intermittent server that forces the agent through repeated loss events.
type flappyServer struct {
	ln net.Listener

	mu     sync.Mutex
	stable bool
	conns  int
}

func newFlappyServer(t *testing.T) *flappyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &flappyServer{ln: ln}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := wire.ReadMessage(conn); err != nil {
				_ = conn.Close()
				continue
			}
			_ = wire.WriteMessage(conn, &wire.HelloAck{OK: true, ServerID: "flappy"})
			f.mu.Lock()
			f.conns++
			drop := !f.stable
			f.mu.Unlock()
			if drop {
				_ = conn.Close()
			}
		}
	}()
	return f
}

// TestAPReconnectEscalation drives a real AP agent against a flapping
// server with an injected RetryClock and recorded sleeps: the observed
// backoff schedule must escalate monotonically across loss events
// instead of restarting at the base interval.
func TestAPReconnectEscalation(t *testing.T) {
	srv := newFlappyServer(t)

	var sleepMu sync.Mutex
	var sleeps []time.Duration
	now := time.Unix(0, 0)
	a, err := DialAP(APConfig{
		ID: "ap1", ServerAddr: srv.ln.Addr().String(), Sites: []geom.Vec{geom.V(1, 1)},
		MaxReconnects: 3, ReconnectBase: 10 * time.Millisecond, ReconnectMax: time.Hour,
		ReconnectResetAfter: time.Minute,
		RetryClock:          func() time.Time { return now }, // frozen: every loss is a flap
		Sleep: func(d time.Duration) {
			sleepMu.Lock()
			sleeps = append(sleeps, d)
			sleepMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- a.Run() }()

	// Let the agent flap through several loss events, then stabilize so
	// Close tears down a live session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := srv.conns
		srv.mu.Unlock()
		if n >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server saw only %d connections", n)
		}
		time.Sleep(time.Millisecond)
	}
	srv.mu.Lock()
	srv.stable = true
	srv.mu.Unlock()
	a.Close()
	<-runDone

	sleepMu.Lock()
	defer sleepMu.Unlock()
	if len(sleeps) < 4 {
		t.Fatalf("recorded only %d backoff sleeps", len(sleeps))
	}
	// Every reconnect here succeeds on its first try, so sleep k carries
	// attempt number k. With the frozen clock no healthy reset fires:
	// the schedule doubles monotonically (jitter keeps each delay within
	// [2^(k-1)·base/2, 2^(k-1)·base], so any restart — a drop back to the
	// base interval — would break monotonicity by attempt 3).
	for i := 1; i < len(sleeps) && i < 8; i++ {
		if sleeps[i] <= sleeps[i-1]/2 {
			t.Errorf("backoff restarted: sleep %d = %v after %v", i, sleeps[i], sleeps[i-1])
		}
	}
}

// TestAgentFailsOverToFallback: when the primary dies, an AP with a
// failover dial list reconnects to the fallback address.
func TestAgentFailsOverToFallback(t *testing.T) {
	primaryLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primaryConns := make(chan net.Conn, 1)
	go func() {
		conn, err := primaryLn.Accept()
		if err != nil {
			return
		}
		if _, err := wire.ReadMessage(conn); err != nil {
			return
		}
		_ = wire.WriteMessage(conn, &wire.HelloAck{OK: true, ServerID: "primary"})
		primaryConns <- conn
	}()
	// Fallback server signals when the agent's hello lands on it.
	fallbackLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fallbackLn.Close() })
	failedOver := make(chan struct{}, 1)
	go func() {
		for {
			conn, err := fallbackLn.Accept()
			if err != nil {
				return
			}
			if _, err := wire.ReadMessage(conn); err != nil {
				_ = conn.Close()
				continue
			}
			_ = wire.WriteMessage(conn, &wire.HelloAck{OK: true, ServerID: "fallback"})
			select {
			case failedOver <- struct{}{}:
			default:
			}
		}
	}()

	a, err := DialAP(APConfig{
		ID: "ap1", ServerAddrs: []string{primaryLn.Addr().String(), fallbackLn.Addr().String()},
		Sites:         []geom.Vec{geom.V(1, 1)},
		MaxReconnects: 5, ReconnectBase: time.Millisecond, ReconnectMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- a.Run() }()

	// Kill the primary: listener and live conn both go away.
	conn := <-primaryConns
	_ = primaryLn.Close()
	_ = conn.Close()

	// The agent must land on the fallback.
	select {
	case <-failedOver:
	case <-time.After(5 * time.Second):
		t.Fatal("agent never reached the fallback address")
	}
	a.Close()
	<-runDone
}
