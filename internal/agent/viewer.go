package agent

import (
	"fmt"
	"net"
	"sync"

	"github.com/nomloc/nomloc/internal/wire"
)

// ViewerConfig parameterizes a viewer agent — a read-only client (a
// dashboard, a logger, the "merchant analytics" consumer of the paper's
// ILBS motivation) that subscribes to the server's location estimates.
type ViewerConfig struct {
	// ID is the viewer identity.
	ID string
	// ServerAddr is the localization server address.
	ServerAddr string
	// Buffer is the estimate channel capacity. Defaults to 64.
	Buffer int
	// Logf, when set, receives diagnostic log lines.
	Logf func(format string, args ...any)
}

// ViewerAgent receives every location estimate the server broadcasts.
type ViewerAgent struct {
	cfg  ViewerConfig
	conn net.Conn

	mu     sync.Mutex
	closed bool

	estimates chan wire.Estimate
	done      chan struct{}
}

// DialViewer connects a viewer and registers it. Call Run (in a
// goroutine) and consume Estimates.
func DialViewer(cfg ViewerConfig) (*ViewerAgent, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("%w: need id", ErrBadConfig)
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	conn, err := handshake(nil, cfg.ServerAddr, &wire.Hello{Role: wire.RoleViewer, ID: cfg.ID}, 0)
	if err != nil {
		return nil, err
	}
	return &ViewerAgent{
		cfg:       cfg,
		conn:      conn,
		estimates: make(chan wire.Estimate, cfg.Buffer),
		done:      make(chan struct{}),
	}, nil
}

// Estimates returns the stream of received estimates. The channel is
// closed when Run exits.
func (v *ViewerAgent) Estimates() <-chan wire.Estimate { return v.estimates }

// Run processes server traffic until the connection closes or Close is
// called.
func (v *ViewerAgent) Run() error {
	defer close(v.done)
	defer close(v.estimates)
	for {
		msg, err := wire.ReadMessage(v.conn)
		if err != nil {
			v.mu.Lock()
			closed := v.closed
			v.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("agent: read: %w", err)
		}
		switch m := msg.(type) {
		case *wire.Estimate:
			select {
			case v.estimates <- *m:
			default:
				v.cfg.Logf("viewer %s: buffer full, dropping round %d", v.cfg.ID, m.RoundID)
			}
		case *wire.ErrorMsg:
			v.cfg.Logf("viewer %s: server error: %s", v.cfg.ID, m.Detail)
		default:
			v.cfg.Logf("viewer %s: ignoring %q", v.cfg.ID, msg.Type())
		}
	}
}

// Close shuts the viewer down and waits for Run to exit.
func (v *ViewerAgent) Close() {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		<-v.done
		return
	}
	v.closed = true
	v.mu.Unlock()
	_ = v.conn.Close() //nomloc:errdrop-ok best-effort close on teardown; the dominant error is already propagating
	<-v.done
}
