package agent

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

// testSim builds a channel simulator from the Lab scenario.
func testSim(t *testing.T) *channel.Simulator {
	t.Helper()
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := scn.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// fakeServer accepts one connection, completes the hello handshake, and
// keeps the conn open until the test ends.
func fakeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := wire.ReadMessage(conn); err != nil {
				_ = conn.Close()
				continue
			}
			_ = wire.WriteMessage(conn, &wire.HelloAck{OK: true, ServerID: "fake"})
		}
	}()
	return ln.Addr().String()
}

// TestSendWrapsErrSessionLost is the regression test for the typed write
// failure: when the transport dies underneath an agent, every failed send
// must be classifiable with errors.Is(err, ErrSessionLost) so callers can
// distinguish a lost session from a protocol error.
func TestSendWrapsErrSessionLost(t *testing.T) {
	addr := fakeServer(t)

	a, err := DialAP(APConfig{ID: "ap1", ServerAddr: addr, Sites: []geom.Vec{geom.V(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = a.Run() }() // reconnects disabled: Run exits on the loss
	defer a.Close()
	a.mu.Lock()
	_ = a.conn.Close() // sever the transport underneath the agent
	a.mu.Unlock()
	if err := a.send(&wire.CSIReport{RoundID: 1, APID: "ap1"}); !errors.Is(err, ErrSessionLost) {
		t.Errorf("AP send after transport loss = %v, want ErrSessionLost", err)
	}

	o, err := DialObject(ObjectConfig{ID: "obj1", ServerAddr: addr, Sim: testSim(t)})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = o.Run() }()
	defer o.Close()
	o.mu.Lock()
	_ = o.conn.Close()
	o.mu.Unlock()
	if err := o.send(&wire.RoundStart{RoundID: 1, ObjectID: "obj1", Packets: 1}); !errors.Is(err, ErrSessionLost) {
		t.Errorf("object send after transport loss = %v, want ErrSessionLost", err)
	}
}

// TestBackoffDeterministicAndCapped pins the reconnect schedule: two RNGs
// from the same seed yield byte-identical delays, doubling from base and
// clamped to max, never dipping below the half-base jitter floor.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	r1, r2 := retryRNG(5), retryRNG(5)
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for k := 1; k <= 12; k++ {
		d1 := backoff(base, max, k, r1)
		d2 := backoff(base, max, k, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v and %v", k, d1, d2)
		}
		if d1 > max {
			t.Errorf("attempt %d: %v exceeds cap %v", k, d1, max)
		}
		ceil := base
		for i := 1; i < k && ceil < max; i++ {
			ceil *= 2
		}
		if ceil > max {
			ceil = max
		}
		if d1 < ceil/2 {
			t.Errorf("attempt %d: %v below jitter floor %v", k, d1, ceil/2)
		}
	}
	if backoff(0, 0, 1, retryRNG(1)) <= 0 {
		t.Error("zero base/max must fall back to defaults, not zero")
	}
}
