package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 57
			var hits [n]atomic.Int32
			err := ForEach(context.Background(), workers, n, func(i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Both index 3 and index 40 fail; regardless of worker interleaving the
	// reported error must be index 3's — what a sequential loop returns.
	wantErr := errors.New("boom-3")
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 8, 64, func(i int) error {
			switch i {
			case 3:
				return wantErr
			case 40:
				return errors.New("boom-40")
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, wantErr)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("pool did not stop claiming after the error")
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 100, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 7} {
		out, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			if i%10 == 0 {
				time.Sleep(time.Millisecond) // shuffle completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapWorkerStatePerWorker(t *testing.T) {
	// Each worker gets its own counter; totals across workers must cover
	// every task exactly once.
	type counter struct{ n int }
	var made atomic.Int32
	out, err := MapWorker(context.Background(), 4, 200,
		func(worker int) *counter {
			made.Add(1)
			return &counter{}
		},
		func(c *counter, i int) (int, error) {
			c.n++
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if int(made.Load()) > 4 {
		t.Fatalf("newState ran %d times for 4 workers", made.Load())
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapWorkerEmpty(t *testing.T) {
	out, err := MapWorker(context.Background(), 4, 0,
		func(int) int { return 0 },
		func(int, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got != 1 {
		t.Fatalf("Resolve(0) = %d", got)
	}
	if got := Resolve(-1); got < 1 {
		t.Fatalf("Resolve(-1) = %d", got)
	}
}

func TestStreamDeterministicAndDecorrelated(t *testing.T) {
	a1 := Stream(42, 7)
	a2 := Stream(42, 7)
	b := Stream(42, 8)
	same, diff := 0, 0
	for i := 0; i < 64; i++ {
		x1, x2, y := a1.Int63(), a2.Int63(), b.Int63()
		if x1 == x2 {
			same++
		}
		if x1 != y {
			diff++
		}
	}
	if same != 64 {
		t.Fatal("equal (seed, task) must yield identical streams")
	}
	if diff == 0 {
		t.Fatal("distinct tasks produced identical streams")
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	const limit = 3
	g := NewGate(limit)
	var inside, peak atomic.Int32
	err := ForEach(context.Background(), 16, 64, func(i int) error {
		if err := g.Enter(context.Background()); err != nil {
			return err
		}
		defer g.Leave()
		now := inside.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inside.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("gate admitted %d concurrent holders, limit %d", p, limit)
	}
}

func TestGateEnterHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Enter(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	g.Leave()
}

func TestMixSeedGrid(t *testing.T) {
	// The formula is a published contract: figures in the eval pipeline
	// were produced with exactly seed + stream*7919 + mode*104729.
	if got := MixSeed(42, 3, 2); got != 42+3*7919+2*104729 {
		t.Fatalf("MixSeed(42, 3, 2) = %d", got)
	}
	if got := MixSeed(5, 0, 0); got != 5 {
		t.Fatalf("MixSeed(5, 0, 0) = %d, want the seed unchanged", got)
	}
	// Distinct (stream, mode) pairs in the harness's operating range must
	// not collide: streams go up to the test-site count (~tens), modes are
	// small named constants.
	seen := map[int64][2]int64{}
	for stream := int64(0); stream < 64; stream++ {
		for mode := int64(0); mode < 128; mode++ {
			s := MixSeed(911, stream, mode)
			if prev, dup := seen[s]; dup {
				t.Fatalf("MixSeed collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], stream, mode, s)
			}
			seen[s] = [2]int64{stream, mode}
		}
	}
}
