// Package parallel is the bounded worker pool the evaluation and solve
// layers fan out on. It is built for deterministic science: results come
// back in input order, errors surface exactly as a sequential run would
// surface them, and per-task RNG streams derive from the run seed alone —
// so a sweep executed on eight workers is bit-identical to the same sweep
// executed on one.
//
// The pool is observable without growing its signatures: when the context
// carries a telemetry registry (telemetry.NewContext), ForEach/Map/
// MapWorker publish queue, occupancy, and per-worker busy-time metrics
// under the nomloc_pool prefix. Instrumentation never influences task
// claiming or results, so the determinism contract is unaffected.
package parallel

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
)

// poolPrefix names the metric family set ForEach/Map/MapWorker publish.
const poolPrefix = "nomloc_pool"

// Resolve maps a Workers option to a concrete worker count: n > 0 is
// taken as-is, 0 means one worker (sequential), and negative means one
// worker per available CPU.
func Resolve(n int) int {
	switch {
	case n > 0:
		return n
	case n < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// ForEach invokes fn(i) for every i in [0, n), distributing indices over
// at most Resolve(workers) goroutines. Indices are claimed in ascending
// order, and once claimed a task always runs to completion; after a task
// fails, unclaimed indices are abandoned. Because every index below a
// claimed one has itself been claimed, the lowest-index error is always
// observed, and ForEach returns exactly the error a sequential loop would
// have returned (fn must be deterministic for this to hold).
//
// Context cancellation is checked between claims; the context's error is
// reported for the first unprocessed index.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	pm := telemetry.NewPoolMetrics(telemetry.FromContext(ctx), poolPrefix)
	pm.SetCapacity(workers)
	submitted := pm.Now()
	pm.Submit(n)
	if workers <= 1 {
		busy := pm.WorkerBusy(0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				pm.Abandon(n - i)
				return err
			}
			at := pm.Claim(submitted)
			err := fn(i)
			pm.Finish(busy, at)
			if err != nil {
				pm.Abandon(n - i - 1)
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		claimed atomic.Int64
		errs    = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			busy := pm.WorkerBusy(worker)
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					stop.Store(true)
					i := int(next.Add(1) - 1)
					if i < n {
						errs[i] = err
					}
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				claimed.Add(1)
				at := pm.Claim(submitted)
				err := fn(i)
				pm.Finish(busy, at)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	pm.Abandon(n - int(claimed.Load()))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) on the pool and collects the results in input
// order. On error the partial results are discarded and the first
// (lowest-index) error is returned, matching ForEach's error contract.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapWorker is Map with per-worker state: newState runs once per worker
// goroutine (worker 0 for the sequential path) and its value is threaded
// into every fn call that worker executes. Use it to reuse scratch
// buffers across tasks without synchronization. Results must not depend
// on which worker ran a task — only on the task index — or the
// determinism guarantee is lost.
//
//nomloc:effect(globalread,spawn)
func MapWorker[S, T any](ctx context.Context, workers, n int, newState func(worker int) S, fn func(state S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return make([]T, 0), nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	pm := telemetry.NewPoolMetrics(telemetry.FromContext(ctx), poolPrefix)
	pm.SetCapacity(workers)
	submitted := pm.Now()
	pm.Submit(n)
	out := make([]T, n)
	if workers <= 1 {
		busy := pm.WorkerBusy(0)
		state := newState(0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				pm.Abandon(n - i)
				return nil, err
			}
			at := pm.Claim(submitted)
			v, err := fn(state, i)
			pm.Finish(busy, at)
			if err != nil {
				pm.Abandon(n - i - 1)
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next    atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		claimed atomic.Int64
		errs    = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			busy := pm.WorkerBusy(worker)
			state := newState(worker)
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					stop.Store(true)
					i := int(next.Add(1) - 1)
					if i < n {
						errs[i] = err
					}
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				claimed.Add(1)
				at := pm.Claim(submitted)
				v, err := fn(state, i)
				pm.Finish(busy, at)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	pm.Abandon(n - int(claimed.Load()))
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stream returns the RNG for task index task of a run seeded with seed.
// Streams for distinct task indices are decorrelated by a SplitMix64
// finalizer, and a given (seed, task) pair always yields the same
// sequence — the property that makes parallel sweeps bit-reproducible:
// randomness belongs to the task, never to the worker that happens to
// execute it.
//
//nomloc:effect(pure)
func Stream(seed, task int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix(uint64(seed), uint64(task)))))
}

// MixSeed derives the root seed for one RNG stream of a seeded run:
// stream is the per-task index (test site, grid point, calibration pass)
// and mode discriminates experiment variants that must not share noise
// (deployment modes, ablation arms). It is the single place seed
// arithmetic lives — nomloc-vet's seedmix analyzer rejects ad-hoc
// `seed + i*prime` derivations elsewhere. The linear grid below is
// exactly the derivation the evaluation pipeline published its figures
// with, so centralizing it does not shift any existing numbers; the
// stride primes keep streams for distinct (stream, mode) pairs disjoint
// across the ranges the harness uses.
//
//nomloc:effect(pure)
func MixSeed(seed, stream, mode int64) int64 {
	return seed + stream*7919 + mode*104729
}

// mix is the SplitMix64 finalizer applied to the seed advanced by the
// task's Weyl increment.
func mix(seed, task uint64) uint64 {
	z := seed + (task+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Gate bounds concurrency for callers that manage their own goroutines
// (the server's round finalization): at most n holders are inside at any
// moment.
type Gate struct {
	slots chan struct{}
	pm    *telemetry.PoolMetrics
}

// NewGate returns a gate admitting Resolve(n) concurrent holders.
func NewGate(n int) *Gate {
	return &Gate{slots: make(chan struct{}, Resolve(n))}
}

// Instrument attaches pool metrics to the gate (nil detaches). Call
// before the gate sees traffic; Enter/Leave read the field without
// synchronization.
func (g *Gate) Instrument(pm *telemetry.PoolMetrics) {
	g.pm = pm
	pm.SetCapacity(cap(g.slots))
}

// Enter blocks until a slot frees up or the context is done.
func (g *Gate) Enter(ctx context.Context) error {
	submitted := g.pm.Now()
	g.pm.Submit(1)
	select {
	case g.slots <- struct{}{}:
		g.pm.Claim(submitted)
		return nil
	case <-ctx.Done():
		g.pm.Abandon(1)
		return ctx.Err()
	}
}

// Leave releases a slot taken by Enter.
func (g *Gate) Leave() {
	g.pm.Finish(nil, time.Time{})
	<-g.slots
}
