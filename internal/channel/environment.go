// Package channel simulates indoor 2.4 GHz radio propagation well enough
// to drive NomLoc's CSI pipeline: a log-distance path-loss model, per-wall
// NLOS attenuation, first-order image-method wall reflections, point
// scatterers for clutter, and per-packet complex noise, all synthesized
// into 802.11n-shaped frequency-domain CSI vectors.
//
// This package is the substitution for the paper's physical testbed
// (Intel 5300 NICs + TL-WR941ND APs in a lab and a lobby at HKUST); see
// DESIGN.md §2 for why the substitution preserves the behaviours the
// NomLoc algorithms depend on.
package channel

import (
	"errors"
	"fmt"

	"github.com/nomloc/nomloc/internal/geom"
)

// Wall is a straight attenuating obstacle. A radio path crossing the wall
// loses AttenuationDB of power; the wall's surface also produces a
// first-order specular reflection when Reflective is set.
type Wall struct {
	// Seg is the wall's footprint.
	Seg geom.Segment
	// AttenuationDB is the power loss per crossing, in dB (≥ 0).
	AttenuationDB float64
	// Reflective marks surfaces that produce image-method reflections
	// (concrete/brick boundary walls, metal cabinets).
	Reflective bool
}

// Scatterer is a point object (furniture, equipment, a person) that
// re-radiates the signal with a fixed excess loss, adding a multipath
// component TX→scatterer→RX.
type Scatterer struct {
	// Pos is the scatterer position.
	Pos geom.Vec
	// ExcessLossDB is the extra power loss of the scattered path relative
	// to pure distance loss over the same length, in dB (≥ 0).
	ExcessLossDB float64
}

// Environment is a 2-D indoor scene: the area boundary, interior walls,
// and clutter.
type Environment struct {
	bound      geom.Polygon
	walls      []Wall
	scatterers []Scatterer
}

// Environment construction errors.
var (
	ErrNoBoundary = errors.New("channel: environment needs a boundary polygon")
	ErrBadWall    = errors.New("channel: invalid wall")
)

// NewEnvironment builds an environment from the boundary polygon. The
// boundary's edges are installed as reflective exterior walls with the
// given attenuation (objects are indoors, so crossings of the boundary
// only matter for reflections, but keeping them attenuating makes the
// scene watertight).
func NewEnvironment(bound geom.Polygon, exteriorWallDB float64) (*Environment, error) {
	if bound.NumVertices() < 3 {
		return nil, ErrNoBoundary
	}
	env := &Environment{bound: bound}
	for _, e := range bound.Edges() {
		env.walls = append(env.walls, Wall{Seg: e, AttenuationDB: exteriorWallDB, Reflective: true})
	}
	return env, nil
}

// Bound returns the area boundary polygon.
func (e *Environment) Bound() geom.Polygon { return e.bound }

// Walls returns a copy of the wall list.
func (e *Environment) Walls() []Wall {
	out := make([]Wall, len(e.walls))
	copy(out, e.walls)
	return out
}

// Scatterers returns a copy of the scatterer list.
func (e *Environment) Scatterers() []Scatterer {
	out := make([]Scatterer, len(e.scatterers))
	copy(out, e.scatterers)
	return out
}

// AddWall installs an interior wall.
func (e *Environment) AddWall(w Wall) error {
	if w.Seg.Len() < geom.Eps {
		return fmt.Errorf("%w: zero-length segment", ErrBadWall)
	}
	if w.AttenuationDB < 0 {
		return fmt.Errorf("%w: negative attenuation %v", ErrBadWall, w.AttenuationDB)
	}
	e.walls = append(e.walls, w)
	return nil
}

// AddBox installs the four walls of an axis-aligned rectangular obstacle
// (a cabinet, a server rack, a pillar). Each wall attenuates by
// attenuationDB; reflective controls whether the faces reflect.
func (e *Environment) AddBox(x0, y0, x1, y1, attenuationDB float64, reflective bool) error {
	r := geom.Rect(x0, y0, x1, y1)
	for _, edge := range r.Edges() {
		if err := e.AddWall(Wall{Seg: edge, AttenuationDB: attenuationDB, Reflective: reflective}); err != nil {
			return err
		}
	}
	return nil
}

// AddScatterer installs a point scatterer.
func (e *Environment) AddScatterer(s Scatterer) error {
	if s.ExcessLossDB < 0 {
		return fmt.Errorf("%w: negative scatterer loss %v", ErrBadWall, s.ExcessLossDB)
	}
	e.scatterers = append(e.scatterers, s)
	return nil
}

// AttenuationBetween returns the total wall attenuation in dB along the
// open segment a→b, counting each properly-crossed wall once. skip, when
// ≥ 0, excludes that wall index (used for reflection legs so the
// reflecting wall itself is not double-counted).
func (e *Environment) AttenuationBetween(a, b geom.Vec, skip int) float64 {
	ray := geom.Seg(a, b)
	var total float64
	for i, w := range e.walls {
		if i == skip {
			continue
		}
		if ray.IntersectsProperly(w.Seg) {
			total += w.AttenuationDB
		}
	}
	return total
}

// HasLOS reports whether the segment a→b crosses no attenuating wall.
func (e *Environment) HasLOS(a, b geom.Vec) bool {
	ray := geom.Seg(a, b)
	for _, w := range e.walls {
		if w.AttenuationDB <= 0 {
			continue
		}
		if ray.IntersectsProperly(w.Seg) {
			return false
		}
	}
	return true
}

// WallsCrossed returns how many attenuating walls the open segment a→b
// properly crosses.
func (e *Environment) WallsCrossed(a, b geom.Vec) int {
	ray := geom.Seg(a, b)
	n := 0
	for _, w := range e.walls {
		if w.AttenuationDB <= 0 {
			continue
		}
		if ray.IntersectsProperly(w.Seg) {
			n++
		}
	}
	return n
}
