package channel

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"time"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/dsp"
	"github.com/nomloc/nomloc/internal/geom"
)

// PathKind classifies how a propagation path reached the receiver.
type PathKind int

// Path kinds.
const (
	Direct PathKind = iota + 1
	Reflected
	Scattered
)

// String implements fmt.Stringer.
func (k PathKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Reflected:
		return "reflected"
	case Scattered:
		return "scattered"
	default:
		return fmt.Sprintf("pathkind(%d)", int(k))
	}
}

// Path is one resolved propagation path between a transmitter and a
// receiver.
type Path struct {
	// Kind says whether the path is direct, a wall reflection, or a
	// scatterer bounce.
	Kind PathKind
	// Length is the total traveled distance in meters.
	Length float64
	// Delay is Length divided by the speed of light, in seconds.
	Delay float64
	// GainDB is the end-to-end power gain (negative: loss) relative to the
	// transmit power, including distance loss, wall crossings, and
	// reflection/scatter losses.
	GainDB float64
	// WallsCrossed counts attenuating walls along the path.
	WallsCrossed int
}

// Params collects the radio and propagation model parameters.
type Params struct {
	// Radio is the OFDM sampling grid producing the CSI.
	Radio csi.Config
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// PathLossExponent is the log-distance exponent γ.
	PathLossExponent float64
	// ReflectionLossDB is the extra loss of one specular wall reflection.
	ReflectionLossDB float64
	// NoiseFloorDBm is the per-subcarrier thermal noise power.
	NoiseFloorDBm float64
	// MinPathGainDB drops paths weaker than this gain (relative to TX
	// power) to bound the path count.
	MinPathGainDB float64
	// PhaseJitterRad is the per-packet RMS carrier phase jitter in
	// radians, modeling oscillator drift between captures.
	PhaseJitterRad float64
	// NumAntennas is the receive-antenna count (the Intel 5300 the paper
	// used has three). Successive packets of a burst cycle through the
	// antennas, whose λ/2-scale spacing decorrelates small-scale fading —
	// the spatial diversity that keeps PDP estimates stable where a single
	// antenna could sit in a deep fade.
	NumAntennas int
	// AntennaSpacingM is the element spacing in meters (~λ/2 at 2.4 GHz).
	AntennaSpacingM float64
	// MaxReflectionOrder bounds the image-method depth: 0 keeps only the
	// direct ray, 1 (the default) adds single-bounce wall reflections,
	// 2 adds double-bounce paths. Higher orders increase multipath
	// richness at quadratic path-enumeration cost.
	MaxReflectionOrder int
}

// DefaultParams returns a parameterization typical of a 2.4 GHz 802.11n
// indoor deployment: ~40 dB loss at 1 m, exponent 2.1 with explicit walls
// carrying the NLOS penalty, 8 dB reflection loss, −92 dBm noise floor.
func DefaultParams() Params {
	return Params{
		Radio:              csi.DefaultConfig(),
		TxPowerDBm:         15,
		RefLossDB:          40,
		PathLossExponent:   2.1,
		ReflectionLossDB:   8,
		NoiseFloorDBm:      -92,
		MinPathGainDB:      -120,
		PhaseJitterRad:     0.05,
		NumAntennas:        3,
		AntennaSpacingM:    0.06,
		MaxReflectionOrder: 1,
	}
}

// Validate checks the parameterization.
func (p Params) Validate() error {
	if err := p.Radio.Validate(); err != nil {
		return err
	}
	if p.PathLossExponent <= 0 {
		return fmt.Errorf("%w: path loss exponent %v", ErrBadParams, p.PathLossExponent)
	}
	if p.ReflectionLossDB < 0 {
		return fmt.Errorf("%w: reflection loss %v", ErrBadParams, p.ReflectionLossDB)
	}
	if p.NumAntennas < 0 || p.AntennaSpacingM < 0 {
		return fmt.Errorf("%w: antennas %d spaced %v", ErrBadParams, p.NumAntennas, p.AntennaSpacingM)
	}
	if p.MaxReflectionOrder < 0 || p.MaxReflectionOrder > 2 {
		return fmt.Errorf("%w: reflection order %d (supported: 0–2)", ErrBadParams, p.MaxReflectionOrder)
	}
	return nil
}

// antennaPos returns the position of receive element k of n, laid out on a
// short horizontal rail centered on rx.
func (s *Simulator) antennaPos(rx geom.Vec, k int) geom.Vec {
	n := s.par.NumAntennas
	if n <= 1 {
		return rx
	}
	offset := (float64(k) - float64(n-1)/2) * s.par.AntennaSpacingM
	return rx.Add(geom.V(offset, 0))
}

// ErrBadParams reports an invalid simulator parameterization.
var ErrBadParams = errors.New("channel: invalid params")

// Simulator synthesizes CSI for TX–RX pairs inside an environment. It is
// safe for concurrent use as long as callers pass distinct *rand.Rand
// instances (the simulator itself holds no mutable state).
type Simulator struct {
	env *Environment
	par Params
}

// NewSimulator validates the parameters and builds a simulator.
func NewSimulator(env *Environment, par Params) (*Simulator, error) {
	if env == nil {
		return nil, ErrNoBoundary
	}
	if err := par.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{env: env, par: par}, nil
}

// Env returns the simulated environment.
func (s *Simulator) Env() *Environment { return s.env }

// Params returns the parameterization.
func (s *Simulator) Params() Params { return s.par }

// pathLossDB is the log-distance loss at distance d (clamped at 0.1 m so
// co-located antennas do not blow up).
//
//nomloc:unit d=m result=dB
func (s *Simulator) pathLossDB(d float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	return s.par.RefLossDB + 10*s.par.PathLossExponent*math.Log10(d)
}

// Paths enumerates the propagation paths from tx to rx: the direct ray,
// one specular reflection per reflective wall (image method), and one
// bounce per scatterer. Paths weaker than MinPathGainDB are dropped; the
// direct path is always kept so the CIR never comes back empty.
func (s *Simulator) Paths(tx, rx geom.Vec) []Path {
	var paths []Path

	// Direct path.
	d := tx.Dist(rx)
	direct := Path{
		Kind:         Direct,
		Length:       d,
		Delay:        d / csi.SpeedOfLight,
		WallsCrossed: s.env.WallsCrossed(tx, rx),
	}
	direct.GainDB = -(s.pathLossDB(d) + s.env.AttenuationBetween(tx, rx, -1))
	paths = append(paths, direct)

	// Wall reflections via the image method, up to the configured order.
	if s.par.MaxReflectionOrder >= 1 {
		for wi, w := range s.env.walls {
			if !w.Reflective {
				continue
			}
			if p, ok := s.firstOrderReflection(tx, rx, wi, w); ok {
				paths = append(paths, p)
			}
		}
	}
	if s.par.MaxReflectionOrder >= 2 {
		for ai, wa := range s.env.walls {
			if !wa.Reflective {
				continue
			}
			for bi, wb := range s.env.walls {
				if ai == bi || !wb.Reflective {
					continue
				}
				if p, ok := s.secondOrderReflection(tx, rx, ai, wa, bi, wb); ok {
					paths = append(paths, p)
				}
			}
		}
	}

	// Scatterer bounces.
	for _, sc := range s.env.scatterers {
		leg1 := tx.Dist(sc.Pos)
		leg2 := sc.Pos.Dist(rx)
		if leg1 < geom.Eps || leg2 < geom.Eps {
			continue
		}
		length := leg1 + leg2
		gain := -(s.pathLossDB(length) + sc.ExcessLossDB +
			s.env.AttenuationBetween(tx, sc.Pos, -1) +
			s.env.AttenuationBetween(sc.Pos, rx, -1))
		if gain < s.par.MinPathGainDB {
			continue
		}
		paths = append(paths, Path{
			Kind:         Scattered,
			Length:       length,
			Delay:        length / csi.SpeedOfLight,
			GainDB:       gain,
			WallsCrossed: s.env.WallsCrossed(tx, sc.Pos) + s.env.WallsCrossed(sc.Pos, rx),
		})
	}
	return paths
}

// firstOrderReflection resolves the single-bounce path off wall wi.
func (s *Simulator) firstOrderReflection(tx, rx geom.Vec, wi int, w Wall) (Path, bool) {
	img := w.Seg.SupportingLine().Mirror(tx)
	// The reflection point is where img→rx crosses the wall segment.
	hit, ok := geom.Seg(img, rx).Intersect(w.Seg)
	if !ok {
		return Path{}, false
	}
	leg1 := tx.Dist(hit)
	leg2 := hit.Dist(rx)
	if leg1 < geom.Eps || leg2 < geom.Eps {
		// Degenerate geometry: tx or rx sits on the wall.
		return Path{}, false
	}
	length := leg1 + leg2
	gain := -(s.pathLossDB(length) + s.par.ReflectionLossDB +
		s.env.AttenuationBetween(tx, hit, wi) +
		s.env.AttenuationBetween(hit, rx, wi))
	if gain < s.par.MinPathGainDB {
		return Path{}, false
	}
	return Path{
		Kind:         Reflected,
		Length:       length,
		Delay:        length / csi.SpeedOfLight,
		GainDB:       gain,
		WallsCrossed: s.env.WallsCrossed(tx, hit) + s.env.WallsCrossed(hit, rx),
	}, true
}

// secondOrderReflection resolves the double-bounce path tx → wall a →
// wall b → rx via nested images: mirror tx across a, mirror that image
// across b; the b-bounce point is where the double image sees rx, and the
// a-bounce point is where the single image sees the b-bounce point.
func (s *Simulator) secondOrderReflection(tx, rx geom.Vec, ai int, wa Wall, bi int, wb Wall) (Path, bool) {
	img1 := wa.Seg.SupportingLine().Mirror(tx)
	img2 := wb.Seg.SupportingLine().Mirror(img1)
	hitB, ok := geom.Seg(img2, rx).Intersect(wb.Seg)
	if !ok {
		return Path{}, false
	}
	hitA, ok := geom.Seg(img1, hitB).Intersect(wa.Seg)
	if !ok {
		return Path{}, false
	}
	leg1 := tx.Dist(hitA)
	leg2 := hitA.Dist(hitB)
	leg3 := hitB.Dist(rx)
	if leg1 < geom.Eps || leg2 < geom.Eps || leg3 < geom.Eps {
		return Path{}, false
	}
	length := leg1 + leg2 + leg3
	gain := -(s.pathLossDB(length) + 2*s.par.ReflectionLossDB +
		s.env.AttenuationBetween(tx, hitA, ai) +
		attenuationSkipTwo(s.env, hitA, hitB, ai, bi) +
		s.env.AttenuationBetween(hitB, rx, bi))
	if gain < s.par.MinPathGainDB {
		return Path{}, false
	}
	return Path{
		Kind:         Reflected,
		Length:       length,
		Delay:        length / csi.SpeedOfLight,
		GainDB:       gain,
		WallsCrossed: s.env.WallsCrossed(tx, hitA) + s.env.WallsCrossed(hitA, hitB) + s.env.WallsCrossed(hitB, rx),
	}, true
}

// attenuationSkipTwo sums wall attenuation along a→b excluding both
// reflecting walls.
func attenuationSkipTwo(e *Environment, a, b geom.Vec, skip1, skip2 int) float64 {
	ray := geom.Seg(a, b)
	var total float64
	for i, w := range e.walls {
		if i == skip1 || i == skip2 {
			continue
		}
		if ray.IntersectsProperly(w.Seg) {
			total += w.AttenuationDB
		}
	}
	return total
}

// Response synthesizes the noiseless frequency-domain channel for the
// tx→rx link: H[k] = Σ_p a_p·exp(−j2π(f_c + f_k)τ_p) with amplitudes from
// the per-path gains. Powers are in mW (0 dBm = 1 mW), so amplitudes are
// in √mW.
func (s *Simulator) Response(tx, rx geom.Vec) csi.Vector {
	paths := s.Paths(tx, rx)
	offsets := s.par.Radio.SubcarrierOffsets()
	h := make(csi.Vector, len(offsets))
	fc := s.par.Radio.CarrierFreq
	for _, p := range paths {
		ampDBm := s.par.TxPowerDBm + p.GainDB
		amp := dsp.AmplitudeFromDB(ampDBm)
		carrierPhase := -2 * math.Pi * fc * p.Delay
		base := complex(amp, 0) * cmplx.Exp(complex(0, carrierPhase))
		for k, f := range offsets {
			h[k] += base * cmplx.Exp(complex(0, -2*math.Pi*f*p.Delay))
		}
	}
	return h
}

// Measure synthesizes one noisy CSI capture for the link: the noiseless
// response plus per-subcarrier complex Gaussian noise at the configured
// noise floor, with a common random phase-jitter rotation.
func (s *Simulator) Measure(tx, rx geom.Vec, rng *rand.Rand) csi.Vector {
	h := s.Response(tx, rx)
	noiseAmp := dsp.AmplitudeFromDB(s.par.NoiseFloorDBm)
	jitter := cmplx.Exp(complex(0, rng.NormFloat64()*s.par.PhaseJitterRad))
	for k := range h {
		n := complex(rng.NormFloat64(), rng.NormFloat64()) *
			complex(noiseAmp/math.Sqrt2, 0)
		h[k] = h[k]*jitter + n
	}
	return h
}

// RSSI returns the coarse received signal strength for the link in dBm:
// total received power across paths (noise floor included), the way a
// commodity NIC reports it. The decibels of an absolute mW power are a
// dBm level, which the annotation records where inference would only
// see dsp.DB's generic dB.
//
//nomloc:unit result=dBm
func (s *Simulator) RSSI(tx, rx geom.Vec) float64 {
	var mw float64
	for _, p := range s.Paths(tx, rx) {
		mw += dsp.FromDB(s.par.TxPowerDBm + p.GainDB)
	}
	mw += dsp.FromDB(s.par.NoiseFloorDBm)
	return dsp.DB(mw)
}

// MeasureBatch captures a burst of packets CSI samples for the link,
// labeled with the capturing AP and site index. now is used as the base
// timestamp; packets are spaced 1 ms apart, matching the paper's
// millisecond PING cadence.
func (s *Simulator) MeasureBatch(apID string, siteIndex int, tx, rx geom.Vec, packets int, now time.Time, rng *rand.Rand) csi.Batch {
	b := csi.Batch{APID: apID, SiteIndex: siteIndex}
	if packets <= 0 {
		return b
	}
	b.Samples = make([]csi.Sample, 0, packets)
	rssi := s.RSSI(tx, rx)
	nAnt := s.par.NumAntennas
	if nAnt < 1 {
		nAnt = 1
	}
	for i := 0; i < packets; i++ {
		b.Samples = append(b.Samples, csi.Sample{
			APID:       apID,
			Seq:        uint64(i),
			CapturedAt: now.Add(time.Duration(i) * time.Millisecond),
			RSSI:       rssi + rng.NormFloat64()*1.5,
			CSI:        s.Measure(tx, s.antennaPos(rx, i%nAnt), rng),
		})
	}
	return b
}

// DelayProfile returns the interpolated power delay profile of the
// noiseless link, zero-padded by factor pad for sub-tap delay resolution,
// together with the per-bin delay step in seconds. It exists to reproduce
// the paper's Fig. 3 (channel response delay profile, LOS vs NLOS).
func (s *Simulator) DelayProfile(tx, rx geom.Vec, pad int) (profile []float64, binDelay float64, err error) {
	if pad < 1 {
		return nil, 0, fmt.Errorf("%w: pad %d", ErrBadParams, pad)
	}
	h := s.Response(tx, rx)
	padded, err := dsp.ZeroPad(h, len(h)*pad)
	if err != nil {
		return nil, 0, err
	}
	profile, err = dsp.PowerDelayProfile(padded)
	if err != nil {
		return nil, 0, err
	}
	binDelay = s.par.Radio.DelayResolution() / float64(pad)
	return profile, binDelay, nil
}
