package channel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/dsp"
	"github.com/nomloc/nomloc/internal/geom"
)

// openRoom returns a 20×10 empty room simulator.
func openRoom(t *testing.T) *Simulator {
	t.Helper()
	env, err := NewEnvironment(geom.Rect(0, 0, 20, 10), 12)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(env, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// walledRoom returns a 20×10 room with a heavy wall at x=10 splitting it.
func walledRoom(t *testing.T) *Simulator {
	t.Helper()
	env, err := NewEnvironment(geom.Rect(0, 0, 20, 10), 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.AddWall(Wall{Seg: geom.Seg(geom.V(10, 0), geom.V(10, 10)), AttenuationDB: 15, Reflective: true}); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(env, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewEnvironmentValidation(t *testing.T) {
	if _, err := NewEnvironment(geom.Polygon{}, 10); !errors.Is(err, ErrNoBoundary) {
		t.Errorf("err = %v, want ErrNoBoundary", err)
	}
	env, err := NewEnvironment(geom.Rect(0, 0, 5, 5), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(env.Walls()); got != 4 {
		t.Errorf("boundary walls = %d, want 4", got)
	}
}

func TestAddWallValidation(t *testing.T) {
	env, _ := NewEnvironment(geom.Rect(0, 0, 5, 5), 10)
	if err := env.AddWall(Wall{Seg: geom.Seg(geom.V(1, 1), geom.V(1, 1))}); !errors.Is(err, ErrBadWall) {
		t.Errorf("zero wall err = %v", err)
	}
	if err := env.AddWall(Wall{Seg: geom.Seg(geom.V(0, 0), geom.V(1, 1)), AttenuationDB: -3}); !errors.Is(err, ErrBadWall) {
		t.Errorf("negative attenuation err = %v", err)
	}
	if err := env.AddScatterer(Scatterer{Pos: geom.V(1, 1), ExcessLossDB: -1}); !errors.Is(err, ErrBadWall) {
		t.Errorf("negative scatter loss err = %v", err)
	}
}

func TestAddBox(t *testing.T) {
	env, _ := NewEnvironment(geom.Rect(0, 0, 10, 10), 10)
	before := len(env.Walls())
	if err := env.AddBox(2, 2, 4, 4, 6, true); err != nil {
		t.Fatal(err)
	}
	if got := len(env.Walls()) - before; got != 4 {
		t.Errorf("box added %d walls, want 4", got)
	}
}

func TestLOSAndAttenuation(t *testing.T) {
	sim := walledRoom(t)
	env := sim.Env()

	// Same side of the wall: LOS.
	if !env.HasLOS(geom.V(2, 5), geom.V(8, 5)) {
		t.Error("same-side link should have LOS")
	}
	// Across the wall: blocked, one wall, 15 dB.
	if env.HasLOS(geom.V(2, 5), geom.V(18, 5)) {
		t.Error("cross-wall link should be NLOS")
	}
	if got := env.WallsCrossed(geom.V(2, 5), geom.V(18, 5)); got != 1 {
		t.Errorf("WallsCrossed = %d, want 1", got)
	}
	if got := env.AttenuationBetween(geom.V(2, 5), geom.V(18, 5), -1); math.Abs(got-15) > 1e-9 {
		t.Errorf("attenuation = %v, want 15", got)
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	env, _ := NewEnvironment(geom.Rect(0, 0, 5, 5), 10)
	if _, err := NewSimulator(nil, DefaultParams()); !errors.Is(err, ErrNoBoundary) {
		t.Errorf("nil env err = %v", err)
	}
	bad := DefaultParams()
	bad.PathLossExponent = 0
	if _, err := NewSimulator(env, bad); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad exponent err = %v", err)
	}
	bad = DefaultParams()
	bad.ReflectionLossDB = -1
	if _, err := NewSimulator(env, bad); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad reflection err = %v", err)
	}
	bad = DefaultParams()
	bad.Radio.NumSubcarriers = 0
	if _, err := NewSimulator(env, bad); err == nil {
		t.Error("bad radio config accepted")
	}
}

func TestPathsDirectAlwaysPresent(t *testing.T) {
	sim := openRoom(t)
	paths := sim.Paths(geom.V(1, 1), geom.V(19, 9))
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	if paths[0].Kind != Direct {
		t.Errorf("first path kind = %v, want Direct", paths[0].Kind)
	}
	wantLen := geom.V(1, 1).Dist(geom.V(19, 9))
	if math.Abs(paths[0].Length-wantLen) > 1e-9 {
		t.Errorf("direct length = %v, want %v", paths[0].Length, wantLen)
	}
	if math.Abs(paths[0].Delay-wantLen/299792458.0) > 1e-15 {
		t.Errorf("direct delay = %v", paths[0].Delay)
	}
}

func TestPathsIncludeReflections(t *testing.T) {
	sim := openRoom(t)
	paths := sim.Paths(geom.V(5, 5), geom.V(15, 5))
	var nRef int
	for _, p := range paths {
		if p.Kind != Reflected {
			continue
		}
		nRef++
		// A reflected path is always longer than the direct one.
		if p.Length <= paths[0].Length {
			t.Errorf("reflection length %v not > direct %v", p.Length, paths[0].Length)
		}
		// And weaker.
		if p.GainDB >= paths[0].GainDB {
			t.Errorf("reflection gain %v not < direct %v", p.GainDB, paths[0].GainDB)
		}
	}
	// A rectangular room yields reflections off all four walls for an
	// interior pair.
	if nRef != 4 {
		t.Errorf("reflections = %d, want 4", nRef)
	}
}

func TestReflectionGeometry(t *testing.T) {
	// For tx=(5,5), rx=(15,5) in a 20×10 room, the floor (y=0) reflection
	// travels 10² + ... : image of tx is (5,−5), so length = |(5,−5)−(15,5)|
	// = √(100+100) = √200.
	sim := openRoom(t)
	want := math.Sqrt(200)
	found := false
	for _, p := range sim.Paths(geom.V(5, 5), geom.V(15, 5)) {
		if p.Kind == Reflected && math.Abs(p.Length-want) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("no reflection with length √200")
	}
}

func TestPathsScatterers(t *testing.T) {
	sim := openRoom(t)
	if err := sim.Env().AddScatterer(Scatterer{Pos: geom.V(10, 8), ExcessLossDB: 10}); err != nil {
		t.Fatal(err)
	}
	paths := sim.Paths(geom.V(5, 5), geom.V(15, 5))
	var found bool
	for _, p := range paths {
		if p.Kind == Scattered {
			found = true
			wantLen := geom.V(5, 5).Dist(geom.V(10, 8)) + geom.V(10, 8).Dist(geom.V(15, 5))
			if math.Abs(p.Length-wantLen) > 1e-9 {
				t.Errorf("scatter length = %v, want %v", p.Length, wantLen)
			}
		}
	}
	if !found {
		t.Error("scatterer path missing")
	}
}

func TestPathGainDecreasesWithDistance(t *testing.T) {
	sim := openRoom(t)
	tx := geom.V(1, 5)
	var prev float64 = math.Inf(1)
	for _, x := range []float64{3, 6, 10, 15, 19} {
		p := sim.Paths(tx, geom.V(x, 5))[0]
		if p.GainDB >= prev {
			t.Errorf("gain at x=%v is %v, not below %v", x, p.GainDB, prev)
		}
		prev = p.GainDB
	}
}

func TestNLOSWeakensDirectPath(t *testing.T) {
	los := openRoom(t)
	nlos := walledRoom(t)
	tx, rx := geom.V(5, 5), geom.V(15, 5)
	gLOS := los.Paths(tx, rx)[0].GainDB
	gNLOS := nlos.Paths(tx, rx)[0].GainDB
	if math.Abs((gLOS-gNLOS)-15) > 1e-9 {
		t.Errorf("NLOS penalty = %v dB, want 15", gLOS-gNLOS)
	}
}

func TestResponseShape(t *testing.T) {
	sim := openRoom(t)
	h := sim.Response(geom.V(2, 2), geom.V(17, 8))
	if len(h) != sim.Params().Radio.NumSubcarriers {
		t.Fatalf("len = %d", len(h))
	}
	if h.IsZero() {
		t.Fatal("response all zero")
	}
	// Multipath must make the response frequency-selective: magnitudes
	// across subcarriers should not all be identical.
	mags := dsp.Magnitudes(h)
	minM, maxM := mags[0], mags[0]
	for _, m := range mags {
		minM = math.Min(minM, m)
		maxM = math.Max(maxM, m)
	}
	if maxM-minM < 1e-12 {
		t.Error("response is frequency-flat despite multipath")
	}
}

func TestPDPTrendsDownWithDistance(t *testing.T) {
	// The premise of NomLoc: nearer AP ⇒ larger direct-path power. At a
	// single point multipath fading can locally invert the order (that is
	// precisely the spatial localizability variance the paper fights), so
	// the test averages PDP over a small set of receiver offsets and
	// checks the distance trend on the averages.
	sim := openRoom(t)
	tx := geom.V(1, 5)
	meanPDP := func(x float64) float64 {
		var sum float64
		offsets := []geom.Vec{
			geom.V(0, -1.1), geom.V(0, -0.4), geom.V(0, 0.3), geom.V(0, 0.9), geom.V(0.5, 0),
		}
		for _, off := range offsets {
			h := sim.Response(tx, geom.V(x, 5).Add(off))
			p, _, err := dsp.DirectPathPower(h)
			if err != nil {
				t.Fatal(err)
			}
			sum += p
		}
		return sum / float64(len(offsets))
	}
	near, mid, far := meanPDP(4), meanPDP(10), meanPDP(16)
	if !(near > mid && mid > far) {
		t.Errorf("mean PDP not decreasing: near=%v mid=%v far=%v", near, mid, far)
	}
	if near < 4*far {
		t.Errorf("near PDP %v not ≫ far PDP %v", near, far)
	}
}

func TestMeasureAddsNoise(t *testing.T) {
	sim := openRoom(t)
	rng := rand.New(rand.NewSource(1))
	tx, rx := geom.V(2, 2), geom.V(10, 8)
	clean := sim.Response(tx, rx)
	noisy := sim.Measure(tx, rx, rng)
	if len(noisy) != len(clean) {
		t.Fatal("length changed")
	}
	var diff float64
	for k := range clean {
		d := noisy[k] - clean[k]
		diff += real(d)*real(d) + imag(d)*imag(d)
	}
	if diff == 0 {
		t.Error("Measure returned the noiseless response")
	}
	// Two measurements differ from each other.
	noisy2 := sim.Measure(tx, rx, rng)
	same := true
	for k := range noisy {
		if noisy[k] != noisy2[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive measurements identical")
	}
}

func TestMeasureDeterministicWithSeed(t *testing.T) {
	sim := openRoom(t)
	tx, rx := geom.V(2, 2), geom.V(10, 8)
	a := sim.Measure(tx, rx, rand.New(rand.NewSource(7)))
	b := sim.Measure(tx, rx, rand.New(rand.NewSource(7)))
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("same seed produced different measurements")
		}
	}
}

func TestRSSIDecreasesWithDistance(t *testing.T) {
	sim := openRoom(t)
	near := sim.RSSI(geom.V(1, 5), geom.V(3, 5))
	far := sim.RSSI(geom.V(1, 5), geom.V(19, 5))
	if near <= far {
		t.Errorf("RSSI near %v not > far %v", near, far)
	}
}

func TestMeasureBatch(t *testing.T) {
	sim := openRoom(t)
	rng := rand.New(rand.NewSource(2))
	now := time.Unix(1700000000, 0)
	b := sim.MeasureBatch("ap1", 3, geom.V(2, 2), geom.V(12, 7), 50, now, rng)
	if b.APID != "ap1" || b.SiteIndex != 3 {
		t.Errorf("batch meta = %q/%d", b.APID, b.SiteIndex)
	}
	if len(b.Samples) != 50 {
		t.Fatalf("samples = %d", len(b.Samples))
	}
	for i, s := range b.Samples {
		if s.Seq != uint64(i) {
			t.Errorf("sample %d seq = %d", i, s.Seq)
		}
		if len(s.CSI) != sim.Params().Radio.NumSubcarriers {
			t.Errorf("sample %d CSI len = %d", i, len(s.CSI))
		}
	}
	if got := b.Samples[1].CapturedAt.Sub(b.Samples[0].CapturedAt); got != time.Millisecond {
		t.Errorf("packet spacing = %v", got)
	}
	empty := sim.MeasureBatch("ap1", 0, geom.V(1, 1), geom.V(2, 2), 0, now, rng)
	if len(empty.Samples) != 0 {
		t.Error("zero-packet batch not empty")
	}
}

func TestDelayProfileFig3Shape(t *testing.T) {
	// Reproduces the Fig. 3 dichotomy: under LOS the earliest significant
	// arrival carries the peak; under NLOS the direct tap is attenuated
	// relative to the LOS case.
	losSim := openRoom(t)
	nlosSim := walledRoom(t)
	tx, rx := geom.V(4, 5), geom.V(16, 5)

	losProfile, binDelay, err := losSim.DelayProfile(tx, rx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if binDelay <= 0 {
		t.Errorf("binDelay = %v", binDelay)
	}
	nlosProfile, _, err := nlosSim.DelayProfile(tx, rx, 8)
	if err != nil {
		t.Fatal(err)
	}

	losPeakIdx, losPeak := dsp.MaxTap(losProfile)
	_, nlosPeak := dsp.MaxTap(nlosProfile)
	if nlosPeak >= losPeak {
		t.Errorf("NLOS peak %v not below LOS peak %v", nlosPeak, losPeak)
	}
	// LOS peak should be at the direct-path delay (~12 m → 40 ns).
	wantDelay := 12.0 / 299792458.0
	gotDelay := float64(losPeakIdx) * binDelay
	if math.Abs(gotDelay-wantDelay) > 30e-9 {
		t.Errorf("LOS peak delay = %v, want ≈ %v", gotDelay, wantDelay)
	}

	if _, _, err := losSim.DelayProfile(tx, rx, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("pad 0 err = %v", err)
	}
}

func TestPathKindString(t *testing.T) {
	if Direct.String() != "direct" || Reflected.String() != "reflected" ||
		Scattered.String() != "scattered" {
		t.Error("PathKind.String mismatch")
	}
	if PathKind(0).String() != "pathkind(0)" {
		t.Error("zero PathKind should not pretty-print")
	}
}

func TestEnvironmentAccessorsCopy(t *testing.T) {
	env, _ := NewEnvironment(geom.Rect(0, 0, 5, 5), 10)
	walls := env.Walls()
	walls[0].AttenuationDB = 999
	if env.Walls()[0].AttenuationDB == 999 {
		t.Error("Walls returned internal storage")
	}
	if err := env.AddScatterer(Scatterer{Pos: geom.V(1, 1), ExcessLossDB: 5}); err != nil {
		t.Fatal(err)
	}
	sc := env.Scatterers()
	sc[0].ExcessLossDB = 999
	if env.Scatterers()[0].ExcessLossDB == 999 {
		t.Error("Scatterers returned internal storage")
	}
}

func BenchmarkResponse(b *testing.B) {
	env, _ := NewEnvironment(geom.Rect(0, 0, 20, 10), 12)
	_ = env.AddBox(5, 5, 7, 7, 6, true)
	sim, _ := NewSimulator(env, DefaultParams())
	tx, rx := geom.V(1, 1), geom.V(18, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.Response(tx, rx)
	}
}

func BenchmarkMeasure(b *testing.B) {
	env, _ := NewEnvironment(geom.Rect(0, 0, 20, 10), 12)
	sim, _ := NewSimulator(env, DefaultParams())
	rng := rand.New(rand.NewSource(3))
	tx, rx := geom.V(1, 1), geom.V(18, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.Measure(tx, rx, rng)
	}
}

func TestReflectionOrderZero(t *testing.T) {
	env, err := NewEnvironment(geom.Rect(0, 0, 20, 10), 12)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams()
	par.MaxReflectionOrder = 0
	sim, err := NewSimulator(env, par)
	if err != nil {
		t.Fatal(err)
	}
	paths := sim.Paths(geom.V(5, 5), geom.V(15, 5))
	if len(paths) != 1 || paths[0].Kind != Direct {
		t.Errorf("order 0 should yield exactly the direct path, got %d paths", len(paths))
	}
}

func TestReflectionOrderTwoAddsPaths(t *testing.T) {
	env, err := NewEnvironment(geom.Rect(0, 0, 20, 10), 12)
	if err != nil {
		t.Fatal(err)
	}
	par1 := DefaultParams()
	par2 := DefaultParams()
	par2.MaxReflectionOrder = 2
	sim1, err := NewSimulator(env, par1)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := NewSimulator(env, par2)
	if err != nil {
		t.Fatal(err)
	}
	tx, rx := geom.V(5, 5), geom.V(15, 5)
	p1 := sim1.Paths(tx, rx)
	p2 := sim2.Paths(tx, rx)
	if len(p2) <= len(p1) {
		t.Fatalf("order 2 (%d paths) should add to order 1 (%d)", len(p2), len(p1))
	}
	// Every order-1 path must still be present with the same length.
	for _, want := range p1 {
		found := false
		for _, got := range p2 {
			if got.Kind == want.Kind && math.Abs(got.Length-want.Length) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("order-1 path of length %v missing at order 2", want.Length)
		}
	}
	// Double bounces must be longer than the direct path and weaker than
	// the corresponding single bounces on average.
	direct := p1[0]
	for _, got := range p2[len(p1):] {
		if got.Length <= direct.Length {
			t.Errorf("double bounce length %v not beyond direct %v", got.Length, direct.Length)
		}
	}
}

func TestSecondOrderGeometryKnownCase(t *testing.T) {
	// In a 20×10 room with tx=(5,5), rx=(15,5), the floor–ceiling double
	// bounce has image chain (5,5)→(5,−5)→(5,25): length |(5,25)−(15,5)| =
	// √(100+400) = √500.
	env, err := NewEnvironment(geom.Rect(0, 0, 20, 10), 12)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams()
	par.MaxReflectionOrder = 2
	sim, err := NewSimulator(env, par)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(500)
	found := false
	for _, p := range sim.Paths(geom.V(5, 5), geom.V(15, 5)) {
		if p.Kind == Reflected && math.Abs(p.Length-want) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("floor–ceiling double bounce of length √500 missing")
	}
}

func TestReflectionOrderValidation(t *testing.T) {
	env, err := NewEnvironment(geom.Rect(0, 0, 5, 5), 10)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams()
	par.MaxReflectionOrder = 3
	if _, err := NewSimulator(env, par); !errors.Is(err, ErrBadParams) {
		t.Errorf("order 3 err = %v", err)
	}
	par.MaxReflectionOrder = -1
	if _, err := NewSimulator(env, par); !errors.Is(err, ErrBadParams) {
		t.Errorf("order -1 err = %v", err)
	}
}
