package track

import (
	"errors"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

// snapshot captures everything externally observable about a filter, so
// tests can assert a rejected estimate changed nothing.
type filterView struct {
	pos, vel, unc geom.Vec
	round         uint64
}

func viewOf(t *testing.T, f *Filter) filterView {
	t.Helper()
	pos, err := f.Position()
	if err != nil {
		t.Fatal(err)
	}
	vel, err := f.Velocity()
	if err != nil {
		t.Fatal(err)
	}
	unc, err := f.Uncertainty()
	if err != nil {
		t.Fatal(err)
	}
	return filterView{pos: pos, vel: vel, unc: unc, round: f.LastRound()}
}

// TestObserveRoundRejectsDuplicates: the same round fed twice — exactly
// what a journal-recovered server's re-sent estimate looks like — is
// rejected with ErrStaleRound and leaves the state bit-identical.
func TestObserveRoundRejectsDuplicates(t *testing.T) {
	f, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ObserveRound(1, geom.V(2, 2), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ObserveRound(2, geom.V(3, 2.5), 1); err != nil {
		t.Fatal(err)
	}
	before := viewOf(t, f)
	if _, err := f.ObserveRound(2, geom.V(3, 2.5), 1); !errors.Is(err, ErrStaleRound) {
		t.Fatalf("duplicate round err = %v, want ErrStaleRound", err)
	}
	if after := viewOf(t, f); after != before {
		t.Errorf("duplicate round mutated state:\n before %+v\n after  %+v", before, after)
	}
}

// TestObserveRoundRejectsOutOfOrder: a chaos-delayed round arriving after
// a newer one is dropped, even when its payload differs wildly.
func TestObserveRoundRejectsOutOfOrder(t *testing.T) {
	f, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for r := uint64(1); r <= 3; r++ {
		if _, err := f.ObserveRound(r, geom.V(float64(r), 1), 1); err != nil {
			t.Fatal(err)
		}
	}
	before := viewOf(t, f)
	if _, err := f.ObserveRound(2, geom.V(100, -100), 1); !errors.Is(err, ErrStaleRound) {
		t.Fatalf("out-of-order round err = %v, want ErrStaleRound", err)
	}
	if after := viewOf(t, f); after != before {
		t.Errorf("out-of-order round mutated state:\n before %+v\n after  %+v", before, after)
	}
	// Gaps are not staleness: round 7 after round 3 is accepted.
	if _, err := f.ObserveRound(7, geom.V(4, 1), 4); err != nil {
		t.Fatalf("gapped round: %v", err)
	}
	if got := f.LastRound(); got != 7 {
		t.Errorf("LastRound = %d, want 7", got)
	}
}

// TestObserveRoundReplayConvergence: a consumer that restarts mid-stream
// and replays the whole estimate history through ObserveRound — the
// journal-replay pattern — converges to the same trajectory as one that
// saw each round exactly once.
func TestObserveRoundReplayConvergence(t *testing.T) {
	rounds := []geom.Vec{
		geom.V(1, 1), geom.V(2, 1.5), geom.V(3, 2), geom.V(4, 2.5),
		geom.V(5, 3), geom.V(6, 3.5),
	}
	clean, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, z := range rounds {
		if _, err := clean.ObserveRound(uint64(i+1), z, 1); err != nil {
			t.Fatal(err)
		}
	}

	replayed, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// First pass: rounds 1..3 arrive live.
	for i := 0; i < 3; i++ {
		if _, err := replayed.ObserveRound(uint64(i+1), rounds[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	// The server restarts and re-sends everything it has (rounds 1..3),
	// then the stream continues live with 4..6. The re-sent prefix must
	// be absorbed as pure no-ops.
	for i := 0; i < 3; i++ {
		if _, err := replayed.ObserveRound(uint64(i+1), rounds[i], 1); !errors.Is(err, ErrStaleRound) {
			t.Fatalf("replayed round %d err = %v, want ErrStaleRound", i+1, err)
		}
	}
	for i := 3; i < len(rounds); i++ {
		if _, err := replayed.ObserveRound(uint64(i+1), rounds[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := viewOf(t, replayed), viewOf(t, clean); got != want {
		t.Errorf("replayed trajectory diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestObserveRoundBadInterval: interval validation still applies and a
// rejected dt does not advance the round cursor.
func TestObserveRoundBadInterval(t *testing.T) {
	f, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ObserveRound(1, geom.V(0, 0), 0); err != nil {
		t.Fatalf("first observation ignores dt: %v", err)
	}
	if _, err := f.ObserveRound(2, geom.V(1, 1), -1); !errors.Is(err, ErrBadInterval) {
		t.Fatalf("bad dt err = %v, want ErrBadInterval", err)
	}
	if got := f.LastRound(); got != 1 {
		t.Errorf("LastRound advanced to %d on a rejected interval", got)
	}
	if _, err := f.ObserveRound(2, geom.V(1, 1), 1); err != nil {
		t.Fatalf("retry after bad interval: %v", err)
	}
}
