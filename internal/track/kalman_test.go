package track

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

func defaultConfig() Config {
	return Config{ProcessNoise: 1, MeasurementStd: 1.5}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero config err = %v", err)
	}
	if _, err := New(Config{ProcessNoise: -1, MeasurementStd: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative q err = %v", err)
	}
	if _, err := New(Config{ProcessNoise: 1, MeasurementStd: math.NaN()}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NaN std err = %v", err)
	}
	f, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Started() {
		t.Error("fresh filter claims started")
	}
}

func TestAccessorsBeforeStart(t *testing.T) {
	f, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Position(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Position err = %v", err)
	}
	if _, err := f.Velocity(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Velocity err = %v", err)
	}
	if _, err := f.Uncertainty(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Uncertainty err = %v", err)
	}
	if _, err := f.Predict(1); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Predict err = %v", err)
	}
}

func TestFirstObservationInitializes(t *testing.T) {
	f, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	z := geom.V(3, 4)
	got, err := f.Observe(z, 0) // dt ignored on first call
	if err != nil {
		t.Fatal(err)
	}
	if got != z {
		t.Errorf("first estimate = %v, want the observation", got)
	}
	if !f.Started() {
		t.Error("not started after first observation")
	}
	pos, err := f.Position()
	if err != nil || pos != z {
		t.Errorf("Position = %v, %v", pos, err)
	}
	vel, err := f.Velocity()
	if err != nil || vel != (geom.Vec{}) {
		t.Errorf("initial velocity = %v, want zero", vel)
	}
}

func TestObserveRejectsBadInterval(t *testing.T) {
	f, _ := New(defaultConfig())
	if _, err := f.Observe(geom.V(0, 0), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Observe(geom.V(1, 1), 0); !errors.Is(err, ErrBadInterval) {
		t.Errorf("dt 0 err = %v", err)
	}
	if _, err := f.Observe(geom.V(1, 1), -1); !errors.Is(err, ErrBadInterval) {
		t.Errorf("dt -1 err = %v", err)
	}
	if _, err := f.Predict(0); !errors.Is(err, ErrBadInterval) {
		t.Errorf("predict dt 0 err = %v", err)
	}
}

func TestStationaryTargetConverges(t *testing.T) {
	// Noisy observations of a fixed point: the filtered estimate must end
	// closer to the truth than the raw observation average error, and the
	// uncertainty must shrink.
	f, err := New(Config{ProcessNoise: 0.01, MeasurementStd: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.V(5, 7)
	rng := rand.New(rand.NewSource(1))
	var last geom.Vec
	for i := 0; i < 200; i++ {
		z := truth.Add(geom.V(rng.NormFloat64()*1.5, rng.NormFloat64()*1.5))
		last, err = f.Observe(z, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if d := last.Dist(truth); d > 0.8 {
		t.Errorf("filtered error %v m after 200 obs of a fixed point", d)
	}
	u, err := f.Uncertainty()
	if err != nil {
		t.Fatal(err)
	}
	if u.X > 1.5 || u.Y > 1.5 {
		t.Errorf("uncertainty %v did not shrink below measurement noise", u)
	}
	v, err := f.Velocity()
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() > 0.3 {
		t.Errorf("stationary target has velocity %v", v)
	}
}

func TestConstantVelocityTracked(t *testing.T) {
	// A target moving at (1, 0.5) m/s with noisy observations: the
	// velocity estimate must converge near the truth.
	// Low process noise: the target really is constant-velocity, so the
	// filter may trust its model and average the noise down.
	f, err := New(Config{ProcessNoise: 0.05, MeasurementStd: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	vel := geom.V(1, 0.5)
	pos := geom.V(0, 0)
	for i := 0; i < 300; i++ {
		pos = pos.Add(vel.Scale(0.5))
		z := pos.Add(geom.V(rng.NormFloat64(), rng.NormFloat64()))
		if _, err := f.Observe(z, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	v, err := f.Velocity()
	if err != nil {
		t.Fatal(err)
	}
	if v.Dist(vel) > 0.25 {
		t.Errorf("velocity estimate %v, want ≈ %v", v, vel)
	}
	p, err := f.Position()
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(pos) > 1.5 {
		t.Errorf("position lag %v m", p.Dist(pos))
	}
}

func TestPredictExtrapolates(t *testing.T) {
	f, err := New(Config{ProcessNoise: 0.5, MeasurementStd: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Feed a clean constant-velocity track so velocity is learned.
	for i := 0; i <= 20; i++ {
		z := geom.V(float64(i), 0)
		if _, err := f.Observe(z, 1); err != nil && i > 0 {
			t.Fatal(err)
		}
	}
	before, err := f.Uncertainty()
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Predict(2)
	if err != nil {
		t.Fatal(err)
	}
	// Should extrapolate to ≈ (22, 0).
	if math.Abs(got.X-22) > 1.0 || math.Abs(got.Y) > 0.5 {
		t.Errorf("prediction %v, want ≈ (22, 0)", got)
	}
	after, err := f.Uncertainty()
	if err != nil {
		t.Fatal(err)
	}
	if after.X <= before.X {
		t.Error("prediction without observation should grow uncertainty")
	}
}

func TestSmoothReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := make([]geom.Vec, 100)
	noisy := make([]geom.Vec, 100)
	pos := geom.V(1, 1)
	vel := geom.V(0.8, 0.3)
	for i := range truth {
		pos = pos.Add(vel.Scale(1))
		truth[i] = pos
		noisy[i] = pos.Add(geom.V(rng.NormFloat64()*2, rng.NormFloat64()*2))
	}
	smooth, err := Smooth(Config{ProcessNoise: 0.3, MeasurementStd: 2}, noisy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(smooth) != len(noisy) {
		t.Fatalf("length = %d", len(smooth))
	}
	// RMS error over the second half (after convergence) must improve on
	// the raw observations.
	var rawErr, smErr float64
	for i := 50; i < 100; i++ {
		rawErr += noisy[i].Dist2(truth[i])
		smErr += smooth[i].Dist2(truth[i])
	}
	if smErr >= rawErr {
		t.Errorf("smoothing did not help: %v vs %v", math.Sqrt(smErr/50), math.Sqrt(rawErr/50))
	}
}

func TestSmoothValidation(t *testing.T) {
	if _, err := Smooth(Config{}, []geom.Vec{{X: 1}}, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v", err)
	}
	got, err := Smooth(defaultConfig(), nil, 1)
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %v", got, err)
	}
}
