// Package track smooths sequences of NomLoc position estimates into
// trajectories: a constant-velocity Kalman filter over 2-D positions.
// Single-round SP estimates are noisy (the feasible-region center jumps as
// judgements flip); for a moving object — the security-patrol and
// shopper-analytics uses the paper motivates — filtering the estimate
// stream recovers a usable track.
package track

import (
	"errors"
	"fmt"
	"math"

	"github.com/nomloc/nomloc/internal/geom"
)

// Config parameterizes the filter.
type Config struct {
	// ProcessNoise is the white-acceleration spectral density q
	// (m²/s³): how aggressively the model lets velocity wander. Typical
	// pedestrian values: 0.5–2.
	ProcessNoise float64
	// MeasurementStd is the per-axis standard deviation of the position
	// estimates fed in, in meters (the localization error scale).
	MeasurementStd float64
	// InitialPosStd is the prior position uncertainty at the first
	// observation. Defaults to 3× MeasurementStd.
	InitialPosStd float64
	// InitialVelStd is the prior speed uncertainty (m/s). Defaults to 2.
	InitialVelStd float64
}

// Filter errors.
var (
	ErrBadConfig   = errors.New("track: invalid config")
	ErrNotStarted  = errors.New("track: filter has no state yet")
	ErrBadInterval = errors.New("track: non-positive time step")
	// ErrStaleRound marks an ObserveRound call whose round ID does not
	// advance the filter — a duplicate or out-of-order estimate. The
	// filter state is untouched; the caller simply drops the estimate.
	ErrStaleRound = errors.New("track: stale or duplicate round")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ProcessNoise <= 0 || math.IsNaN(c.ProcessNoise) {
		return fmt.Errorf("%w: process noise %v", ErrBadConfig, c.ProcessNoise)
	}
	if c.MeasurementStd <= 0 || math.IsNaN(c.MeasurementStd) {
		return fmt.Errorf("%w: measurement std %v", ErrBadConfig, c.MeasurementStd)
	}
	return nil
}

// Filter is a constant-velocity Kalman filter with state
// [x, y, vx, vy]. The x and y axes are independent under this model, so
// the filter runs two decoupled 2-state filters sharing parameters —
// numerically simpler and exactly equivalent.
type Filter struct {
	cfg       Config
	started   bool
	lastRound uint64
	x         axisState
	y         axisState
}

// axisState is one axis's [position, velocity] state and covariance.
type axisState struct {
	pos, vel            float64
	pPos, pPosVel, pVel float64 // symmetric 2×2 covariance entries
}

// New builds a filter.
//
//nomloc:effect(globalread)
func New(cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialPosStd <= 0 {
		cfg.InitialPosStd = 3 * cfg.MeasurementStd
	}
	if cfg.InitialVelStd <= 0 {
		cfg.InitialVelStd = 2
	}
	return &Filter{cfg: cfg}, nil
}

// Started reports whether the filter has been initialized by an
// observation.
func (f *Filter) Started() bool { return f.started }

// Position returns the current state estimate.
func (f *Filter) Position() (geom.Vec, error) {
	if !f.started {
		return geom.Vec{}, ErrNotStarted
	}
	return geom.V(f.x.pos, f.y.pos), nil
}

// Velocity returns the current velocity estimate in m/s.
func (f *Filter) Velocity() (geom.Vec, error) {
	if !f.started {
		return geom.Vec{}, ErrNotStarted
	}
	return geom.V(f.x.vel, f.y.vel), nil
}

// Uncertainty returns the per-axis position standard deviations.
func (f *Filter) Uncertainty() (geom.Vec, error) {
	if !f.started {
		return geom.Vec{}, ErrNotStarted
	}
	return geom.V(math.Sqrt(f.x.pPos), math.Sqrt(f.y.pPos)), nil
}

// Observe feeds one position estimate taken dt seconds after the previous
// one and returns the filtered position. The first observation initializes
// the state (dt is ignored then).
func (f *Filter) Observe(z geom.Vec, dt float64) (geom.Vec, error) {
	if !f.started {
		p0 := f.cfg.InitialPosStd * f.cfg.InitialPosStd
		v0 := f.cfg.InitialVelStd * f.cfg.InitialVelStd
		f.x = axisState{pos: z.X, pPos: p0, pVel: v0}
		f.y = axisState{pos: z.Y, pPos: p0, pVel: v0}
		f.started = true
		return z, nil
	}
	if dt <= 0 || math.IsNaN(dt) {
		return geom.Vec{}, fmt.Errorf("%w: %v", ErrBadInterval, dt)
	}
	r := f.cfg.MeasurementStd * f.cfg.MeasurementStd
	f.x.step(z.X, dt, f.cfg.ProcessNoise, r)
	f.y.step(z.Y, dt, f.cfg.ProcessNoise, r)
	return geom.V(f.x.pos, f.y.pos), nil
}

// ObserveRound feeds the estimate for one numbered round, making the
// filter safe to drive from an at-least-once estimate stream: a server
// recovering from its journal re-sends estimates for already-finalized
// rounds, and chaos-delayed frames can arrive out of order. Round IDs
// must strictly increase; a duplicate or older round is rejected with
// ErrStaleRound and leaves the state exactly as it was. Gaps are fine —
// dt is the caller's elapsed time since the last accepted estimate.
//
//nomloc:effect(globalread)
func (f *Filter) ObserveRound(roundID uint64, z geom.Vec, dt float64) (geom.Vec, error) {
	if f.started && roundID <= f.lastRound {
		return geom.Vec{}, fmt.Errorf("%w: round %d after round %d", ErrStaleRound, roundID, f.lastRound)
	}
	p, err := f.Observe(z, dt)
	if err != nil {
		return p, err
	}
	f.lastRound = roundID
	return p, nil
}

// LastRound returns the highest round ID ObserveRound has accepted, zero
// before the first.
func (f *Filter) LastRound() uint64 { return f.lastRound }

// Predict advances the state dt seconds without an observation (a missed
// round) and returns the predicted position.
func (f *Filter) Predict(dt float64) (geom.Vec, error) {
	if !f.started {
		return geom.Vec{}, ErrNotStarted
	}
	if dt <= 0 || math.IsNaN(dt) {
		return geom.Vec{}, fmt.Errorf("%w: %v", ErrBadInterval, dt)
	}
	f.x.predict(dt, f.cfg.ProcessNoise)
	f.y.predict(dt, f.cfg.ProcessNoise)
	return geom.V(f.x.pos, f.y.pos), nil
}

// predict runs the time update: x ← F x, P ← F P Fᵀ + Q with
// F = [1 dt; 0 1] and the white-acceleration Q.
func (a *axisState) predict(dt, q float64) {
	a.pos += a.vel * dt

	// P ← F P Fᵀ.
	pPos := a.pPos + dt*(2*a.pPosVel+dt*a.pVel)
	pPosVel := a.pPosVel + dt*a.pVel
	a.pPos, a.pPosVel = pPos, pPosVel

	// Q for white acceleration with spectral density q.
	dt2 := dt * dt
	a.pPos += q * dt2 * dt / 3
	a.pPosVel += q * dt2 / 2
	a.pVel += q * dt
}

// step runs predict + the measurement update for observation z with
// variance r (H = [1 0]).
func (a *axisState) step(z, dt, q, r float64) {
	a.predict(dt, q)
	s := a.pPos + r
	kPos := a.pPos / s
	kVel := a.pPosVel / s
	innov := z - a.pos
	a.pos += kPos * innov
	a.vel += kVel * innov
	// Joseph-free covariance update (standard form; fine for these
	// well-conditioned 2×2 systems).
	pPos := (1 - kPos) * a.pPos
	pPosVel := (1 - kPos) * a.pPosVel
	pVel := a.pVel - kVel*a.pPosVel
	a.pPos, a.pPosVel, a.pVel = pPos, pPosVel, pVel
}

// Smooth runs the filter over a whole estimate sequence sampled at a
// fixed interval and returns the filtered trajectory (same length).
//
//nomloc:effect(globalread)
func Smooth(cfg Config, estimates []geom.Vec, dt float64) ([]geom.Vec, error) {
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Vec, 0, len(estimates))
	for _, z := range estimates {
		p, err := f.Observe(z, dt) // the first observation ignores dt
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
