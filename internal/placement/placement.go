// Package placement implements static AP deployment optimization — the
// alternative the paper argues against in §III ("even if the AP deployment
// is optimized, once being fixed, it still cannot be further adaptive").
// A greedy forward-selection optimizer places k APs from a candidate grid
// to minimize a localizability objective, so experiments can pit
// *optimized static* deployments against the unoptimized-but-nomadic
// NomLoc configuration.
package placement

import (
	"errors"
	"fmt"

	"github.com/nomloc/nomloc/internal/geom"
)

// Objective scores a candidate deployment (lower is better). Evaluations
// must be deterministic for reproducible optimization runs.
type Objective func(aps []geom.Vec) (float64, error)

// Optimizer errors.
var (
	ErrNoCandidates = errors.New("placement: no candidate positions")
	ErrBadCount     = errors.New("placement: invalid AP count")
	ErrNilObjective = errors.New("placement: nil objective")
)

// Greedy places k APs by forward selection: at each step it adds the
// candidate position that minimizes the objective given the APs chosen so
// far. With n candidates this costs O(k·n) objective evaluations.
func Greedy(candidates []geom.Vec, k int, objective Objective) ([]geom.Vec, float64, error) {
	if len(candidates) == 0 {
		return nil, 0, ErrNoCandidates
	}
	if k <= 0 || k > len(candidates) {
		return nil, 0, fmt.Errorf("%w: %d of %d candidates", ErrBadCount, k, len(candidates))
	}
	if objective == nil {
		return nil, 0, ErrNilObjective
	}

	chosen := make([]geom.Vec, 0, k)
	used := make([]bool, len(candidates))
	best := 0.0
	for step := 0; step < k; step++ {
		bestIdx := -1
		bestScore := 0.0
		for ci, cand := range candidates {
			if used[ci] {
				continue
			}
			trial := append(append([]geom.Vec(nil), chosen...), cand)
			score, err := objective(trial)
			if err != nil {
				return nil, 0, fmt.Errorf("objective at step %d candidate %v: %w", step, cand, err)
			}
			if bestIdx == -1 || score < bestScore {
				bestIdx, bestScore = ci, score
			}
		}
		if bestIdx == -1 {
			return nil, 0, ErrNoCandidates
		}
		used[bestIdx] = true
		chosen = append(chosen, candidates[bestIdx])
		best = bestScore
	}
	return chosen, best, nil
}

// GridCandidates returns candidate AP positions on a grid over the area,
// keeping a margin from the boundary (APs mount on or near walls in
// practice, but a margin avoids degenerate mirror geometry).
func GridCandidates(area geom.Polygon, spacing, margin float64) ([]geom.Vec, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("%w: spacing %v", ErrBadCount, spacing)
	}
	pts := area.SamplePoints(spacing, margin)
	if len(pts) == 0 {
		return nil, ErrNoCandidates
	}
	return pts, nil
}

// GeometricDilution is a cheap, simulator-free objective: the mean over
// probe points of the distance to the nearest AP plus a spread penalty
// for anchor collinearity. It is a proxy for localizability (close,
// well-spread anchors partition space finely) used to pre-screen
// candidates before expensive harness-based evaluation.
func GeometricDilution(probes []geom.Vec) Objective {
	return func(aps []geom.Vec) (float64, error) {
		if len(aps) == 0 {
			return 0, ErrBadCount
		}
		var sum float64
		for _, p := range probes {
			nearest := p.Dist(aps[0])
			for _, a := range aps[1:] {
				if d := p.Dist(a); d < nearest {
					nearest = d
				}
			}
			sum += nearest
		}
		mean := sum / float64(len(probes))

		// Spread penalty: prefer anchor sets with large pairwise minimum
		// distance (collinear or clustered anchors localize poorly even
		// when close to everything).
		if len(aps) >= 2 {
			minPair := aps[0].Dist(aps[1])
			for i := 0; i < len(aps); i++ {
				for j := i + 1; j < len(aps); j++ {
					if d := aps[i].Dist(aps[j]); d < minPair {
						minPair = d
					}
				}
			}
			if minPair < 1e-9 {
				return mean * 10, nil // coincident anchors: strongly penalized
			}
			mean += 2 / minPair
		}
		return mean, nil
	}
}
