package placement

import (
	"errors"
	"math"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

func TestGridCandidates(t *testing.T) {
	area := geom.Rect(0, 0, 10, 10)
	cands, err := GridCandidates(area, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if !area.ContainsStrict(c, 0.49) {
			t.Errorf("candidate %v violates the margin", c)
		}
	}
	if _, err := GridCandidates(area, 0, 0); !errors.Is(err, ErrBadCount) {
		t.Errorf("zero spacing err = %v", err)
	}
	if _, err := GridCandidates(area, 100, 0); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("too coarse err = %v", err)
	}
}

func TestGreedyValidation(t *testing.T) {
	cands := []geom.Vec{geom.V(1, 1), geom.V(2, 2)}
	obj := func([]geom.Vec) (float64, error) { return 0, nil }
	if _, _, err := Greedy(nil, 1, obj); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("no candidates err = %v", err)
	}
	if _, _, err := Greedy(cands, 0, obj); !errors.Is(err, ErrBadCount) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, _, err := Greedy(cands, 3, obj); !errors.Is(err, ErrBadCount) {
		t.Errorf("k>n err = %v", err)
	}
	if _, _, err := Greedy(cands, 1, nil); !errors.Is(err, ErrNilObjective) {
		t.Errorf("nil objective err = %v", err)
	}
}

func TestGreedyPicksObviousOptimum(t *testing.T) {
	// Objective: distance of the single AP to a target point — greedy
	// must pick the closest candidate.
	target := geom.V(5, 5)
	cands := []geom.Vec{geom.V(0, 0), geom.V(4.8, 5.1), geom.V(9, 9), geom.V(2, 7)}
	obj := func(aps []geom.Vec) (float64, error) {
		return aps[len(aps)-1].Dist(target), nil
	}
	chosen, score, err := Greedy(cands, 1, obj)
	if err != nil {
		t.Fatal(err)
	}
	if chosen[0] != geom.V(4.8, 5.1) {
		t.Errorf("chose %v", chosen)
	}
	if math.Abs(score-geom.V(4.8, 5.1).Dist(target)) > 1e-12 {
		t.Errorf("score = %v", score)
	}
}

func TestGreedyNoDuplicates(t *testing.T) {
	cands := []geom.Vec{geom.V(0, 0), geom.V(1, 0), geom.V(2, 0)}
	obj := func(aps []geom.Vec) (float64, error) { return 0, nil } // indifferent
	chosen, _, err := Greedy(cands, 3, obj)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Vec]bool{}
	for _, c := range chosen {
		if seen[c] {
			t.Fatalf("duplicate position %v", c)
		}
		seen[c] = true
	}
}

func TestGreedyPropagatesObjectiveError(t *testing.T) {
	cands := []geom.Vec{geom.V(0, 0)}
	boom := errors.New("boom")
	obj := func([]geom.Vec) (float64, error) { return 0, boom }
	if _, _, err := Greedy(cands, 1, obj); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestGeometricDilutionPrefersSpreadCoverage(t *testing.T) {
	area := geom.Rect(0, 0, 10, 10)
	probes := area.SamplePoints(1, 0.2)
	obj := GeometricDilution(probes)

	// Four corners beat four clustered center points.
	corners := []geom.Vec{geom.V(1, 1), geom.V(9, 1), geom.V(1, 9), geom.V(9, 9)}
	clustered := []geom.Vec{geom.V(4.9, 5), geom.V(5.1, 5), geom.V(5, 4.9), geom.V(5, 5.1)}
	sc, err := obj(corners)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := obj(clustered)
	if err != nil {
		t.Fatal(err)
	}
	if sc >= sk {
		t.Errorf("corners (%v) should score below the cluster (%v)", sc, sk)
	}
	if _, err := obj(nil); !errors.Is(err, ErrBadCount) {
		t.Errorf("empty AP set err = %v", err)
	}
	// Coincident anchors are strongly penalized, not Inf/NaN.
	dup := []geom.Vec{geom.V(5, 5), geom.V(5, 5)}
	sd, err := obj(dup)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(sd, 0) || math.IsNaN(sd) {
		t.Errorf("coincident score = %v", sd)
	}
	if sd <= sc {
		t.Error("coincident anchors should score worse than corners")
	}
}

func TestGreedyWithDilutionEndToEnd(t *testing.T) {
	// Greedy + dilution on a square: 4 APs should spread out (pairwise
	// min distance comfortably large).
	area := geom.Rect(0, 0, 12, 8)
	cands, err := GridCandidates(area, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	probes := area.SamplePoints(1.5, 0.4)
	chosen, _, err := Greedy(cands, 4, GeometricDilution(probes))
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 4 {
		t.Fatalf("chose %d", len(chosen))
	}
	minPair := math.Inf(1)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if d := chosen[i].Dist(chosen[j]); d < minPair {
				minPair = d
			}
		}
	}
	if minPair < 3 {
		t.Errorf("optimized APs cluster: min pairwise distance %v", minPair)
	}
}
