package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/wire"
)

// buildJournal writes a small journal whose round-solved record came from
// the real solver, so -verify is clean by construction. When tamper is
// set, a second round-solved record with a corrupted estimate follows.
func buildJournal(t *testing.T, tamper bool) string {
	t.Helper()
	dir := t.TempDir()
	j, err := journal.Open(journal.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	meta := journal.Meta{
		ServerID:        "replay-test",
		AreaVertices:    geom.Rect(0, 0, 12, 8).Vertices(),
		MaxNomadicSites: 4,
	}
	if err := j.AppendMeta(meta); err != nil {
		t.Fatal(err)
	}
	batch := func(apID string, vec []complex128) csi.Batch {
		return csi.Batch{APID: apID, Samples: []csi.Sample{
			{APID: apID, Seq: 0, CSI: vec},
			{APID: apID, Seq: 1, CSI: vec},
		}}
	}
	reports := []*wire.CSIReport{
		{RoundID: 1, APID: "ap1", Pos: geom.V(1, 1), Batch: batch("ap1", []complex128{1, 2})},
		{RoundID: 1, APID: "ap2", Pos: geom.V(11, 7), Batch: batch("ap2", []complex128{2, 1})},
	}
	for _, rep := range reports {
		if err := j.AppendReport("obj1", rep); err != nil {
			t.Fatal(err)
		}
	}
	area, err := geom.NewPolygon(meta.AreaVertices)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.New(core.Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	est, err := journal.SolveReports(loc, reports)
	if err != nil {
		t.Fatal(err)
	}
	rs := journal.RoundSolved{
		Estimate: wire.Estimate{RoundID: 1, ObjectID: "obj1", Pos: est.Position, RelaxCost: est.RelaxCost, NumAnchors: 2},
		Anchors:  []journal.AnchorRef{{APID: "ap1", RoundID: 1}, {APID: "ap2", RoundID: 1}},
	}
	if err := j.AppendRoundSolved(rs); err != nil {
		t.Fatal(err)
	}
	if tamper {
		bad := rs
		bad.Estimate.RoundID = 2
		bad.Estimate.Pos.X += 0.5
		if err := j.AppendRoundSolved(bad); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("missing -journal exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-journal is required") {
		t.Fatalf("stderr = %q", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-journal", filepath.Join(t.TempDir(), "absent")}, &out, &errOut); code != 2 {
		t.Fatalf("absent dir exited %d, want 2", code)
	}
}

func TestSummary(t *testing.T) {
	dir := buildJournal(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{"-journal", dir}, &out, &errOut); code != 0 {
		t.Fatalf("summary exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{`server="replay-test"`, "records=4", "estimates=1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary %q missing %q", out.String(), want)
		}
	}

	out.Reset()
	if code := run([]string{"-journal", dir, "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("json summary exited %d: %s", code, errOut.String())
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("summary json: %v", err)
	}
	if sum.ServerID != "replay-test" || sum.Records != 4 || sum.Reports != 2 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestVerifyCleanAndDiverged(t *testing.T) {
	clean := buildJournal(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{"-journal", clean, "-verify"}, &out, &errOut); code != 0 {
		t.Fatalf("clean verify exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "diffs=0") {
		t.Fatalf("verify output = %q", out.String())
	}

	tampered := buildJournal(t, true)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-journal", tampered, "-verify"}, &out, &errOut); code != 1 {
		t.Fatalf("tampered verify exited %d, want 1: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "pos.x") {
		t.Fatalf("diff output = %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-journal", tampered, "-verify", "-json"}, &out, &errOut); code != 1 {
		t.Fatalf("tampered json verify exited %d, want 1", code)
	}
	var vr journal.VerifyResult
	if err := json.Unmarshal(out.Bytes(), &vr); err != nil {
		t.Fatalf("verify json: %v", err)
	}
	if len(vr.Diffs) != 1 || vr.Diffs[0].Field != "pos.x" {
		t.Fatalf("verify json diffs = %+v", vr.Diffs)
	}
}

// TestVerifyCorruptJournal: interior corruption is exit 2, not a diff.
func TestVerifyCorruptJournal(t *testing.T) {
	dir := buildJournal(t, false)
	// Flip a byte in the first (and only) segment's interior, then add a
	// second segment so the corruption is no longer a clean tail.
	segments, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segName string
	for _, e := range segments {
		if strings.HasSuffix(e.Name(), ".seg") {
			segName = e.Name()
		}
	}
	if segName == "" {
		t.Fatal("no segment file")
	}
	j, err := journal.Open(journal.Options{Dir: dir, NoSync: true, SegmentMaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentMaxBytes 1 forces the next append into a fresh segment.
	if err := j.AppendSessionOpen(wire.RoleViewer, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-journal", dir, "-verify"}, &out, &errOut); code != 2 {
		t.Fatalf("corrupt verify exited %d, want 2: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "corrupt") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}
