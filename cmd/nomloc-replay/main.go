// Command nomloc-replay inspects and verifies a server's round journal.
// Without flags it performs a read-only recovery and prints a one-line
// summary of what the journal holds. With -verify it re-solves every
// recorded round through the same localization path the live server ran
// and diffs the results bit-exactly against the recorded estimates —
// a non-empty diff means the journal and the solver disagree, which is
// either corruption or a solver regression.
//
// Usage:
//
//	nomloc-replay -journal dir           # summary
//	nomloc-replay -journal dir -verify   # re-solve and diff (exit 1 on diffs)
//	nomloc-replay -journal dir -verify -json
//
// Exit status: 0 clean, 1 verification diffs, 2 unreadable or corrupt
// journal / bad usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/nomloc/nomloc/internal/journal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// summary is the -json shape of a non-verify inspection.
type summary struct {
	ServerID   string `json:"serverId"`
	Records    int    `json:"records"`
	LastSeq    uint64 `json:"lastSeq"`
	Objects    int    `json:"objects"`
	Reports    int    `json:"reports"`
	Estimates  int    `json:"estimates"`
	Finished   int    `json:"finished"`
	Segments   int    `json:"segments"`
	TornBytes  int64  `json:"tornBytes"`
	TotalBytes int64  `json:"totalBytes"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nomloc-replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("journal", "", "journal directory (required)")
	verify := fs.Bool("verify", false, "re-solve every recorded round and diff against recorded estimates")
	asJSON := fs.Bool("json", false, "machine-readable output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "nomloc-replay: -journal is required")
		fs.Usage()
		return 2
	}
	if *verify {
		return runVerify(*dir, *asJSON, stdout, stderr)
	}
	return runSummary(*dir, *asJSON, stdout, stderr)
}

// runSummary performs a read-only recovery and reports what the journal
// holds.
func runSummary(dir string, asJSON bool, stdout, stderr io.Writer) int {
	st, stats, err := journal.ReadState(dir)
	if err != nil {
		fmt.Fprintf(stderr, "nomloc-replay: %v\n", err)
		return 2
	}
	size, err := journal.DirSize(dir)
	if err != nil {
		fmt.Fprintf(stderr, "nomloc-replay: %v\n", err)
		return 2
	}
	reports := 0
	for _, oh := range st.History {
		reports += len(oh.Reports)
	}
	sum := summary{
		ServerID:   st.Meta.ServerID,
		Records:    stats.Records,
		LastSeq:    stats.LastSeq,
		Objects:    len(st.History),
		Reports:    reports,
		Estimates:  len(st.Estimates),
		Finished:   len(st.Finished),
		Segments:   stats.Segments,
		TornBytes:  stats.TruncatedBytes,
		TotalBytes: size,
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(stderr, "nomloc-replay: encode: %v\n", err)
			return 2
		}
		return 0
	}
	fmt.Fprintf(stdout, "journal %s: server=%q records=%d lastSeq=%d objects=%d reports=%d estimates=%d finished=%d segments=%d torn=%dB size=%dB\n",
		dir, sum.ServerID, sum.Records, sum.LastSeq, sum.Objects, sum.Reports,
		sum.Estimates, sum.Finished, sum.Segments, sum.TornBytes, sum.TotalBytes)
	return 0
}

// runVerify re-solves the journal and reports diffs.
func runVerify(dir string, asJSON bool, stdout, stderr io.Writer) int {
	vr, err := journal.Verify(dir)
	if err != nil {
		fmt.Fprintf(stderr, "nomloc-replay: verify: %v\n", err)
		return 2
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(vr); err != nil {
			fmt.Fprintf(stderr, "nomloc-replay: encode: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "verify %s: records=%d rounds=%d resolved=%d skipped=%d torn=%dB diffs=%d\n",
			dir, vr.Records, vr.Rounds, vr.Resolved, vr.Skipped, vr.TornBytes, len(vr.Diffs))
		for _, d := range vr.Diffs {
			fmt.Fprintf(stdout, "  round %d object %s %s: recorded %s, replayed %s\n",
				d.RoundID, d.ObjectID, d.Field, d.Recorded, d.Replayed)
		}
	}
	if !vr.Clean() {
		fmt.Fprintf(stderr, "nomloc-replay: %d estimate(s) diverged from replay\n", len(vr.Diffs))
		return 1
	}
	return 0
}
