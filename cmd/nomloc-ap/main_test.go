package main

import (
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "-id") {
		t.Errorf("missing id err = %v", err)
	}
	if err := run([]string{"-id", "ap2", "-scenario", "warehouse"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-id", "ghost", "-scenario", "lab"}); err == nil {
		t.Error("unknown AP id accepted")
	}
	// Nomadic flag with a static AP id.
	if err := run([]string{"-id", "ap2", "-nomadic", "-scenario", "lab"}); err == nil {
		t.Error("nomadic mismatch accepted")
	}
	// Valid identity but unreachable server.
	if err := run([]string{"-id", "ap2", "-server", "127.0.0.1:1"}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
