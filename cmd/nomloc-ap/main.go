// Command nomloc-ap runs one access-point agent against a running
// nomloc-server. The AP identity is looked up in the scenario, which
// pins its position (static) or waypoint set (nomadic).
//
// Usage:
//
//	nomloc-ap -server 127.0.0.1:7100 -scenario lab -id ap2
//	nomloc-ap -server 127.0.0.1:7100 -scenario lab -id ap1 -nomadic -er 1.0
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/nomloc/nomloc/internal/agent"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nomloc-ap:", err)
		os.Exit(1)
	}
}

// splitAddrs turns the -server value into a failover dial list: one
// address, or a comma-separated list with the primary first.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func run(args []string) error {
	fs := flag.NewFlagSet("nomloc-ap", flag.ContinueOnError)
	serverAddr := fs.String("server", "127.0.0.1:7100", "localization server address, or a comma-separated failover list (primary first; fallbacks tried in a per-agent seeded order on failed handshakes)")
	scenario := fs.String("scenario", "lab", "scenario the AP belongs to")
	id := fs.String("id", "", "AP id (e.g. ap1..ap4; required)")
	nomadic := fs.Bool("nomadic", false, "run as the nomadic AP (id must match the scenario's nomadic AP)")
	er := fs.Float64("er", 0, "believed-position error range in meters (nomadic only)")
	maxReconnects := fs.Int("max-reconnects", 8, "reconnect attempts after a lost session (0 disables; failover needs this to reach a promoted standby)")
	seed := fs.Int64("seed", 1, "mobility/error seed")
	metricsAddr := fs.String("metrics", "", "serve GET /metrics and /debug/pprof/ on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return errors.New("missing -id")
	}

	scn, err := deploy.ByName(*scenario)
	if err != nil {
		return err
	}
	var sites []geom.Vec
	if *nomadic {
		if scn.Nomadic.ID != *id {
			return fmt.Errorf("scenario %q has nomadic AP %q, not %q", scn.Name, scn.Nomadic.ID, *id)
		}
		sites = scn.Nomadic.AllSites()
	} else {
		found := false
		for _, ap := range scn.AllAPsStatic() {
			if ap.ID == *id {
				sites = []geom.Vec{ap.Pos}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("scenario %q has no AP %q", scn.Name, *id)
		}
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.New(nil)
		mux := http.NewServeMux()
		telemetry.RegisterDebug(mux, reg)
		go func() {
			log.Printf("nomloc-ap: metrics on %s", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("nomloc-ap: metrics: %v", err)
			}
		}()
	}

	a, err := agent.DialAP(agent.APConfig{
		ID:             *id,
		ServerAddrs:    splitAddrs(*serverAddr),
		Sites:          sites,
		Nomadic:        *nomadic,
		PositionErrorM: *er,
		MaxReconnects:  *maxReconnects,
		Seed:           *seed,
		Telemetry:      reg,
		Logf:           log.Printf,
	})
	if err != nil {
		return err
	}
	log.Printf("nomloc-ap: %s registered with %s (nomadic=%v, %d sites)",
		*id, *serverAddr, *nomadic, len(sites))

	runErr := make(chan error, 1)
	go func() { runErr <- a.Run() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("nomloc-ap: %v, closing", s)
		a.Close()
		<-runErr
		return nil
	case err := <-runErr:
		if errors.Is(err, agent.ErrClosed) {
			return nil
		}
		return err
	}
}
