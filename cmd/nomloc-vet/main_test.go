package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsVetClean is the acceptance gate: the full module must carry
// zero findings. A regression here means someone reintroduced a
// determinism or lock-hygiene violation.
func TestRepoIsVetClean(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("nomloc-vet on the repo = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errOut.String())
	}
}

// tmpModule materializes a throwaway module holding one detrand
// violation (time.Now in a package named core) and returns its root.
func tmpModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpvet\n\ngo 1.22\n")
	writeTmp(t, dir, "core/core.go", `package core

import "time"

func Clock() time.Time { return time.Now() }
`)
	return dir
}

func writeTmp(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFindingsExitOne builds a throwaway module holding a detrand
// violation and checks the multichecker reports it and exits 1.
func TestFindingsExitOne(t *testing.T) {
	dir := tmpModule(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "detrand") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("findings missing detrand/time.Now:\n%s", out.String())
	}
	// Paths print relative to -C, so output is checkout-independent.
	if !strings.Contains(out.String(), "core/core.go:5:") {
		t.Fatalf("finding not reported with a tree-relative path:\n%s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"detrand", "seedmix", "floateq", "locksafe", "nanguard", "errdrop", "leakcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
}
