package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
)

// TestRepoIsVetClean is the acceptance gate: the full module must carry
// zero findings. A regression here means someone reintroduced a
// determinism or lock-hygiene violation.
func TestRepoIsVetClean(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("nomloc-vet on the repo = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errOut.String())
	}
}

// tmpModule materializes a throwaway module holding one detrand
// violation (time.Now in a package named core) and returns its root.
func tmpModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpvet\n\ngo 1.22\n")
	writeTmp(t, dir, "core/core.go", `package core

import "time"

func Clock() time.Time { return time.Now() }
`)
	return dir
}

func writeTmp(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFindingsExitOne builds a throwaway module holding a detrand
// violation and checks the multichecker reports it and exits 1.
func TestFindingsExitOne(t *testing.T) {
	dir := tmpModule(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "detrand") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("findings missing detrand/time.Now:\n%s", out.String())
	}
	// Paths print relative to -C, so output is checkout-independent.
	if !strings.Contains(out.String(), "core/core.go:5:") {
		t.Fatalf("finding not reported with a tree-relative path:\n%s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"detrand", "seedmix", "floateq", "locksafe", "nanguard", "errdrop", "leakcheck", "lockorder", "unitcheck", "effects"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	for _, flag := range []string{"-analyzers", "-checks"} {
		var out, errOut bytes.Buffer
		if code := run([]string{flag, "nope"}, &out, &errOut); code != 2 {
			t.Fatalf("%s nope exit = %d, want 2", flag, code)
		}
		if !strings.Contains(errOut.String(), `unknown analyzer "nope"`) {
			t.Errorf("%s nope stderr should name the unknown analyzer:\n%s", flag, errOut.String())
		}
	}
}

// TestChecksSelectsSubset runs only detrand via the -checks spelling and
// confirms the leakcheck-only violation in the fixture module is not
// reported — selection actually narrows the suite.
func TestChecksSelectsSubset(t *testing.T) {
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpchk\n\ngo 1.22\n")
	writeTmp(t, dir, "server/server.go", `package server

func busy() {}

func Serve() {
	go func() {
		for {
			busy()
		}
	}()
}
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-checks", "detrand", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-checks detrand exit = %d, want 0 (leak findings must be filtered)\nstdout:\n%s", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", dir, "-checks", "leakcheck", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("-checks leakcheck exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

func TestCallGraphBadMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-callgraph", "svg"}, &out, &errOut); code != 2 {
		t.Fatalf("-callgraph=svg exit = %d, want 2", code)
	}
}

// TestCallGraphDOTGolden pins the -callgraph=dot dump on a tiny fixture
// module: exact bytes, twice.
func TestCallGraphDOTGolden(t *testing.T) {
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpcg\n\ngo 1.22\n")
	writeTmp(t, dir, "lib/lib.go", `package lib

func Leaf() int { return 1 }

func Mid() int { return Leaf() }

func Top() int { return Mid() }
`)
	const golden = `digraph nomloc {
  rankdir=LR;
  "tmpcg/lib.Leaf" [shape=box,label="tmpcg/lib.Leaf\nlib.go:3"];
  "tmpcg/lib.Mid" [shape=box,label="tmpcg/lib.Mid\nlib.go:5"];
  "tmpcg/lib.Top" [shape=box,label="tmpcg/lib.Top\nlib.go:7"];
  "tmpcg/lib.Mid" -> "tmpcg/lib.Leaf";
  "tmpcg/lib.Top" -> "tmpcg/lib.Mid";
}
`
	var first, second, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-callgraph=dot", "./..."}, &first, &errOut); code != 0 {
		t.Fatalf("-callgraph=dot exit = %d\nstderr:\n%s", code, errOut.String())
	}
	if first.String() != golden {
		t.Errorf("DOT dump:\n%s\nwant:\n%s", first.String(), golden)
	}
	errOut.Reset()
	if code := run([]string{"-C", dir, "-callgraph=dot", "./..."}, &second, &errOut); code != 0 {
		t.Fatalf("second -callgraph=dot exit = %d", code)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("-callgraph=dot output differs across two runs")
	}
}

// TestVetDeterministic is the two-run byte-equality contract for the
// full machine-readable output: running the entire suite over the whole
// module twice must produce identical -json bytes.
func TestVetDeterministic(t *testing.T) {
	var first, second, errOut bytes.Buffer
	if code := run([]string{"-C", "../..", "-json", "./..."}, &first, &errOut); code != 0 {
		t.Fatalf("run 1 exit = %d\nstderr:\n%s", code, errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-C", "../..", "-json", "./..."}, &second, &errOut); code != 0 {
		t.Fatalf("run 2 exit = %d\nstderr:\n%s", code, errOut.String())
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("full-suite -json output differs across two runs on the same tree")
	}
}

func TestEffectsDumpBadMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-effects", "svg"}, &out, &errOut); code != 2 {
		t.Fatalf("-effects=svg exit = %d, want 2", code)
	}
}

func TestEffectsAndCallGraphExclusive(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-effects=json", "-callgraph=dot", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("-effects -callgraph exit = %d, want 2", code)
	}
}

// TestEffectsDumpGolden pins the -effects=json dump on a tiny fixture
// module: exact bytes, twice.
func TestEffectsDumpGolden(t *testing.T) {
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpeff\n\ngo 1.22\n")
	writeTmp(t, dir, "lib/lib.go", `package lib

import "time"

func Clock() time.Time { return time.Now() }

func Stamp() int64 { return Clock().UnixNano() }

func Add(a, b int) int { return a + b }
`)
	const golden = `{
  "functions": [
    {"id": "tmpeff/lib.Add", "effects": "pure", "own": "pure"},
    {"id": "tmpeff/lib.Clock", "effects": "wallclock", "own": "wallclock"},
    {"id": "tmpeff/lib.Stamp", "effects": "wallclock", "own": "pure"}
  ]
}
`
	var first, second, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-effects=json", "./..."}, &first, &errOut); code != 0 {
		t.Fatalf("-effects=json exit = %d\nstderr:\n%s", code, errOut.String())
	}
	if first.String() != golden {
		t.Errorf("effects dump:\n%s\nwant:\n%s", first.String(), golden)
	}
	errOut.Reset()
	if code := run([]string{"-C", dir, "-effects=dot", "./..."}, &second, &errOut); code != 0 {
		t.Fatalf("-effects=dot exit = %d\nstderr:\n%s", code, errOut.String())
	}
	for _, frag := range []string{"digraph nomloc_effects", `"tmpeff/lib.Clock"`, "style=bold", `"tmpeff/lib.Stamp" -> "tmpeff/lib.Clock";`} {
		if !strings.Contains(second.String(), frag) {
			t.Errorf("-effects=dot output missing %q:\n%s", frag, second.String())
		}
	}
}

// TestGateRootsFlag seeds a time.Now into a function reachable from a
// -gate-roots override and demands the replay-safety diagnostic — the
// CLI half of the issue's regression requirement.
func TestGateRootsFlag(t *testing.T) {
	defer func(prev []string) { analysis.GateRoots = prev }(analysis.GateRoots)
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpgate\n\ngo 1.22\n")
	writeTmp(t, dir, "solve/solve.go", `package solve

import "time"

//nomloc:effect(wallclock)
func Entry() int64 { return helper() }

func helper() int64 { return time.Now().UnixNano() }
`)
	var out, errOut bytes.Buffer
	code := run([]string{"-C", dir, "-checks", "effects", "-gate-roots", "solve.Entry", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("gated run exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "replay-safety gate: calls time.Now (wallclock) in solve.helper, reachable from gate root solve.Entry") {
		t.Fatalf("missing gate diagnostic:\n%s", out.String())
	}
}

// TestInterproceduralFindingViaCLI drives a cross-function leak through
// the whole stack: the spawn site passes a context, only the callee's
// body (seen via the Program's summaries) proves the goroutine ignores
// it.
func TestInterproceduralFindingViaCLI(t *testing.T) {
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpleak\n\ngo 1.22\n")
	writeTmp(t, dir, "server/server.go", `package server

import "context"

func busy() {}

func spin(ctx context.Context) {
	for {
		busy()
	}
}

func Serve(ctx context.Context) {
	go spin(ctx)
}
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-analyzers", "leakcheck", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "goroutine calls spin, which loops forever") {
		t.Fatalf("missing interprocedural leak finding:\n%s", out.String())
	}
}
