package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsVetClean is the acceptance gate: the full module must carry
// zero findings. A regression here means someone reintroduced a
// determinism or lock-hygiene violation.
func TestRepoIsVetClean(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("nomloc-vet on the repo = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errOut.String())
	}
}

// tmpModule materializes a throwaway module holding one detrand
// violation (time.Now in a package named core) and returns its root.
func tmpModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpvet\n\ngo 1.22\n")
	writeTmp(t, dir, "core/core.go", `package core

import "time"

func Clock() time.Time { return time.Now() }
`)
	return dir
}

func writeTmp(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFindingsExitOne builds a throwaway module holding a detrand
// violation and checks the multichecker reports it and exits 1.
func TestFindingsExitOne(t *testing.T) {
	dir := tmpModule(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "detrand") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("findings missing detrand/time.Now:\n%s", out.String())
	}
	// Paths print relative to -C, so output is checkout-independent.
	if !strings.Contains(out.String(), "core/core.go:5:") {
		t.Fatalf("finding not reported with a tree-relative path:\n%s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"detrand", "seedmix", "floateq", "locksafe", "nanguard", "errdrop", "leakcheck", "lockorder", "unitcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
}

func TestCallGraphBadMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-callgraph", "svg"}, &out, &errOut); code != 2 {
		t.Fatalf("-callgraph=svg exit = %d, want 2", code)
	}
}

// TestCallGraphDOTGolden pins the -callgraph=dot dump on a tiny fixture
// module: exact bytes, twice.
func TestCallGraphDOTGolden(t *testing.T) {
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpcg\n\ngo 1.22\n")
	writeTmp(t, dir, "lib/lib.go", `package lib

func Leaf() int { return 1 }

func Mid() int { return Leaf() }

func Top() int { return Mid() }
`)
	const golden = `digraph nomloc {
  rankdir=LR;
  "tmpcg/lib.Leaf" [shape=box,label="tmpcg/lib.Leaf\nlib.go:3"];
  "tmpcg/lib.Mid" [shape=box,label="tmpcg/lib.Mid\nlib.go:5"];
  "tmpcg/lib.Top" [shape=box,label="tmpcg/lib.Top\nlib.go:7"];
  "tmpcg/lib.Mid" -> "tmpcg/lib.Leaf";
  "tmpcg/lib.Top" -> "tmpcg/lib.Mid";
}
`
	var first, second, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-callgraph=dot", "./..."}, &first, &errOut); code != 0 {
		t.Fatalf("-callgraph=dot exit = %d\nstderr:\n%s", code, errOut.String())
	}
	if first.String() != golden {
		t.Errorf("DOT dump:\n%s\nwant:\n%s", first.String(), golden)
	}
	errOut.Reset()
	if code := run([]string{"-C", dir, "-callgraph=dot", "./..."}, &second, &errOut); code != 0 {
		t.Fatalf("second -callgraph=dot exit = %d", code)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("-callgraph=dot output differs across two runs")
	}
}

// TestInterproceduralFindingViaCLI drives a cross-function leak through
// the whole stack: the spawn site passes a context, only the callee's
// body (seen via the Program's summaries) proves the goroutine ignores
// it.
func TestInterproceduralFindingViaCLI(t *testing.T) {
	dir := t.TempDir()
	writeTmp(t, dir, "go.mod", "module tmpleak\n\ngo 1.22\n")
	writeTmp(t, dir, "server/server.go", `package server

import "context"

func busy() {}

func spin(ctx context.Context) {
	for {
		busy()
	}
}

func Serve(ctx context.Context) {
	go spin(ctx)
}
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-analyzers", "leakcheck", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "goroutine calls spin, which loops forever") {
		t.Fatalf("missing interprocedural leak finding:\n%s", out.String())
	}
}
