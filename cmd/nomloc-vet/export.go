package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/nomloc/nomloc/internal/analysis"
)

// Finding is one diagnostic in exportable form. File is relative to the
// -C directory with forward slashes, so the same tree produces the same
// bytes no matter where it is checked out — the exporters inherit the
// determinism contract the analyzers enforce.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// sortFindings orders findings by (file, line, col, analyzer, message):
// the one canonical order every output mode shares.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// writeJSON emits the findings as an indented JSON array (never null:
// a clean run is an empty array).
func writeJSON(out io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	buf, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", buf)
	return err
}

// SARIF 2.1.0 — the minimal subset GitHub code scanning ingests. Field
// order is fixed by the struct definitions, so output is byte-stable.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits the findings as a SARIF 2.1.0 log. The rule table
// lists the full suite that ran (sorted by id), findings or not, so a
// clean run still documents what was checked.
func writeSARIF(out io.Writer, findings []Finding, suite []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(suite))
	for _, a := range suite {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "nomloc-vet", Rules: rules}},
			Results: results,
		}},
	}
	buf, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", buf)
	return err
}

// Baseline ratchet. The baseline keys findings by (analyzer, file,
// message) with an occurrence count and deliberately ignores line
// numbers: moving baselined code around must not trip CI, adding a NEW
// instance of a baselined message in the same file must.
//
// baselineVersion is the schema version this build reads and writes.
// Version 2 introduced validation itself: a baseline whose version does
// not match is rejected with BaselineVersionError instead of silently
// mis-diffing against entries a different schema may key differently.
const baselineVersion = 2

// BaselineVersionError reports a baseline written under a different
// schema version. The fix is always the same: regenerate the file with
// -update-baseline from a tree built at this version.
type BaselineVersionError struct {
	Path string
	Got  int
	Want int
}

func (e *BaselineVersionError) Error() string {
	return fmt.Sprintf("baseline %s has schema version %d, this build expects %d; regenerate it with -update-baseline", e.Path, e.Got, e.Want)
}

type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// loadBaseline reads and indexes a baseline file.
func loadBaseline(path string) (map[string]int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(buf, &bf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, &BaselineVersionError{Path: path, Got: bf.Version, Want: baselineVersion}
	}
	idx := make(map[string]int, len(bf.Findings))
	for _, e := range bf.Findings {
		idx[baselineKey(e.Analyzer, e.File, e.Message)] += e.Count
	}
	return idx, nil
}

// diffBaseline splits findings into the new ones (beyond the baselined
// count for their key) and reports how many baseline entries are stale
// (baselined occurrences that no longer happen). Findings must already
// be in canonical order; within one key the later occurrences are the
// ones reported new.
func diffBaseline(findings []Finding, baseline map[string]int) (news []Finding, stale int) {
	allowed := make(map[string]int, len(baseline))
	for k, v := range baseline {
		allowed[k] = v
	}
	for _, f := range findings {
		k := baselineKey(f.Analyzer, f.File, f.Message)
		if allowed[k] > 0 {
			allowed[k]--
			continue
		}
		news = append(news, f)
	}
	for _, rest := range allowed {
		stale += rest
	}
	return news, stale
}

// writeBaseline persists the findings as a fresh baseline, canonically
// ordered so the checked-in file diffs cleanly.
func writeBaseline(path string, findings []Finding) error {
	counts := map[string]baselineEntry{}
	for _, f := range findings {
		k := baselineKey(f.Analyzer, f.File, f.Message)
		e := counts[k]
		e.Analyzer, e.File, e.Message = f.Analyzer, f.File, f.Message
		e.Count++
		counts[k] = e
	}
	entries := make([]baselineEntry, 0, len(counts))
	for _, e := range counts {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	buf, err := json.MarshalIndent(baselineFile{Version: baselineVersion, Findings: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
