package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
)

// TestWriteJSONGolden pins the JSON exporter's exact bytes: the /metrics
// determinism contract applied to findings.
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	err := writeJSON(&buf, []Finding{
		{Analyzer: "detrand", File: "internal/core/x.go", Line: 5, Col: 3, Message: "boom"},
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = `[
  {
    "analyzer": "detrand",
    "file": "internal/core/x.go",
    "line": 5,
    "col": 3,
    "message": "boom"
  }
]
`
	if buf.String() != want {
		t.Errorf("JSON output:\n%s\nwant:\n%s", buf.String(), want)
	}

	// A clean run is an empty array, never null.
	buf.Reset()
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Errorf("empty JSON output = %q, want %q", buf.String(), "[]\n")
	}
}

// TestWriteSARIFGolden pins the SARIF exporter's exact bytes for a
// one-rule suite with one finding.
func TestWriteSARIFGolden(t *testing.T) {
	suite := []*analysis.Analyzer{{Name: "detrand", Doc: "no wall clocks"}}
	var buf bytes.Buffer
	err := writeSARIF(&buf, []Finding{
		{Analyzer: "detrand", File: "internal/core/x.go", Line: 5, Col: 3, Message: "boom"},
	}, suite)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "nomloc-vet",
          "rules": [
            {
              "id": "detrand",
              "shortDescription": {
                "text": "no wall clocks"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "detrand",
          "level": "warning",
          "message": {
            "text": "boom"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "internal/core/x.go"
                },
                "region": {
                  "startLine": 5,
                  "startColumn": 3
                }
              }
            }
          ]
        }
      ]
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("SARIF output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestWriteSARIFGoldenInterprocedural pins the SARIF bytes for the two
// summary-based analyzers, so their rule wiring stays stable.
func TestWriteSARIFGoldenInterprocedural(t *testing.T) {
	suite := []*analysis.Analyzer{
		{Name: "lockorder", Doc: "no AB-BA"},
		{Name: "unitcheck", Doc: "no mixed units"},
	}
	var buf bytes.Buffer
	err := writeSARIF(&buf, []Finding{
		{Analyzer: "lockorder", File: "internal/server/s.go", Line: 7, Col: 2, Message: "lock order inversion"},
		{Analyzer: "unitcheck", File: "internal/dsp/d.go", Line: 9, Col: 10, Message: "unit mismatch"},
	}, suite)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "nomloc-vet",
          "rules": [
            {
              "id": "lockorder",
              "shortDescription": {
                "text": "no AB-BA"
              }
            },
            {
              "id": "unitcheck",
              "shortDescription": {
                "text": "no mixed units"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "lockorder",
          "level": "warning",
          "message": {
            "text": "lock order inversion"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "internal/server/s.go"
                },
                "region": {
                  "startLine": 7,
                  "startColumn": 2
                }
              }
            }
          ]
        },
        {
          "ruleId": "unitcheck",
          "level": "warning",
          "message": {
            "text": "unit mismatch"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "internal/dsp/d.go"
                },
                "region": {
                  "startLine": 9,
                  "startColumn": 10
                }
              }
            }
          ]
        }
      ]
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("SARIF output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestExportersByteStableOnRepo runs each exporter twice over the real
// module and demands byte-identical output — the acceptance criterion
// for wiring them into code scanning.
func TestExportersByteStableOnRepo(t *testing.T) {
	for _, mode := range []string{"-json", "-sarif"} {
		t.Run(mode, func(t *testing.T) {
			var first, second, errOut bytes.Buffer
			if code := run([]string{mode, "-C", "../..", "./..."}, &first, &errOut); code != 0 {
				t.Fatalf("run 1 exit = %d\nstderr:\n%s", code, errOut.String())
			}
			errOut.Reset()
			if code := run([]string{mode, "-C", "../..", "./..."}, &second, &errOut); code != 0 {
				t.Fatalf("run 2 exit = %d\nstderr:\n%s", code, errOut.String())
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("%s output differs across two runs on the same tree", mode)
			}
		})
	}
}

// TestJSONExportOnModule checks the end-to-end JSON shape over a module
// with a known finding.
func TestJSONExportOnModule(t *testing.T) {
	dir := tmpModule(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-C", dir, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var findings []Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0].Analyzer != "detrand" ||
		findings[0].File != "core/core.go" || findings[0].Line != 5 {
		t.Errorf("findings = %+v, want one detrand at core/core.go:5", findings)
	}
}

// TestSARIFExportOnModule checks the end-to-end SARIF shape, including
// the full rule table.
func TestSARIFExportOnModule(t *testing.T) {
	dir := tmpModule(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-sarif", "-C", dir, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log = %+v, want one 2.1.0 run", log)
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "nomloc-vet" {
		t.Errorf("driver name = %q", got)
	}
	if nrules := len(log.Runs[0].Tool.Driver.Rules); nrules != len(analysis.All()) {
		t.Errorf("rule table has %d rules, want the full suite of %d", nrules, len(analysis.All()))
	}
	res := log.Runs[0].Results
	if len(res) != 1 || res[0].RuleID != "detrand" ||
		res[0].Locations[0].PhysicalLocation.ArtifactLocation.URI != "core/core.go" {
		t.Errorf("results = %+v, want one detrand at core/core.go", res)
	}
}

// TestBaselineRatchet drives the whole ratchet lifecycle: record,
// tolerate, catch new findings, and note stale entries.
func TestBaselineRatchet(t *testing.T) {
	dir := tmpModule(t)
	baseline := filepath.Join(dir, "vet-baseline.json")

	// A missing baseline file is a hard error, not an empty baseline —
	// silently passing everything would defeat the gate.
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-C", dir, "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("missing baseline exit = %d, want 2", code)
	}

	// Record the current findings.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-update-baseline", "-C", dir, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-update-baseline exit = %d\nstderr:\n%s", code, errOut.String())
	}

	// Baselined findings no longer fail the run.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-C", dir, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}

	// A NEW violation in a different file still fails.
	writeTmp(t, dir, "core/extra.go", `package core

import "time"

func Later() time.Time { return time.Now() }
`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-C", dir, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("new-finding run exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "core/extra.go") || strings.Contains(out.String(), "core/core.go") {
		t.Errorf("text mode should print only the new finding:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "new finding(s) beyond baseline") {
		t.Errorf("stderr should name the ratchet:\n%s", errOut.String())
	}

	// Fixing baselined code yields a stale note, never a failure.
	if err := os.Remove(filepath.Join(dir, "core/core.go")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "core/extra.go")); err != nil {
		t.Fatal(err)
	}
	writeTmp(t, dir, "core/core.go", "package core\n")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-C", dir, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("stale-baseline run exit = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no longer occur") {
		t.Errorf("stderr should note the stale baseline entry:\n%s", errOut.String())
	}
}

// TestBaselineLineInsensitive moves the baselined violation to a
// different line and checks the ratchet stays quiet: the key is
// (analyzer, file, message), not position.
func TestBaselineLineInsensitive(t *testing.T) {
	dir := tmpModule(t)
	baseline := filepath.Join(dir, "vet-baseline.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-update-baseline", "-C", dir, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-update-baseline exit = %d", code)
	}
	writeTmp(t, dir, "core/core.go", `package core

import "time"

// Pushed down a few lines.

func Clock() time.Time { return time.Now() }
`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-C", dir, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("moved finding exit = %d, want 0 (baseline must ignore line numbers)\nstdout:\n%s", code, out.String())
	}
}

// TestBaselineVersionMismatch pins the schema contract: a baseline from
// a different version is a typed, actionable error — never a silent
// mis-diff.
func TestBaselineVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vet-baseline.json")
	if err := os.WriteFile(path, []byte(`{"version": 1, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadBaseline(path)
	var verr *BaselineVersionError
	if !errors.As(err, &verr) {
		t.Fatalf("loadBaseline(v1) err = %v, want *BaselineVersionError", err)
	}
	if verr.Got != 1 || verr.Want != baselineVersion || verr.Path != path {
		t.Errorf("BaselineVersionError = %+v, want Got=1 Want=%d Path=%s", verr, baselineVersion, path)
	}
	for _, frag := range []string{"schema version 1", "-update-baseline"} {
		if !strings.Contains(verr.Error(), frag) {
			t.Errorf("error text missing %q: %s", frag, verr.Error())
		}
	}

	// A versionless (implicitly version-0) baseline is rejected too.
	if err := os.WriteFile(path, []byte(`{"findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); !errors.As(err, &verr) || verr.Got != 0 {
		t.Fatalf("loadBaseline(versionless) err = %v, want *BaselineVersionError with Got=0", err)
	}
}

// TestBaselineVersionViaCLI checks the mismatch surfaces as a usage-level
// exit (2), and that -update-baseline writes the current version back.
func TestBaselineVersionViaCLI(t *testing.T) {
	dir := tmpModule(t)
	baseline := filepath.Join(dir, "vet-baseline.json")
	writeTmp(t, dir, "vet-baseline.json", `{"version": 1, "findings": []}`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-C", dir, "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("stale-version baseline exit = %d, want 2\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "schema version 1") {
		t.Errorf("stderr should name the version mismatch:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-update-baseline", "-C", dir, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-update-baseline exit = %d\nstderr:\n%s", code, errOut.String())
	}
	buf, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var bf baselineFile
	if err := json.Unmarshal(buf, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Version != baselineVersion {
		t.Errorf("rewritten baseline version = %d, want %d", bf.Version, baselineVersion)
	}
}

func TestJSONAndSARIFExclusive(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-sarif", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("-json -sarif exit = %d, want 2", code)
	}
}

func TestUpdateBaselineRequiresBaseline(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-update-baseline", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("-update-baseline without -baseline exit = %d, want 2", code)
	}
}
