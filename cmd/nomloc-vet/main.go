// Command nomloc-vet is the multichecker for NomLoc's determinism and
// concurrency contract. It composes the internal/analysis suite —
// detrand, seedmix, floateq, locksafe, plus the flow-sensitive
// nanguard, errdrop, and leakcheck, the summary-based lockorder and
// unitcheck, and the interprocedural effects analyzer with its
// replay-safety gate — over `go list` package patterns and exits
// nonzero when any analyzer reports a finding, so CI can gate merges
// on the contract the same way it gates on tests:
//
//	go run ./cmd/nomloc-vet ./...
//	go run ./cmd/nomloc-vet -checks detrand,seedmix ./internal/eval/
//	go run ./cmd/nomloc-vet -json ./...
//	go run ./cmd/nomloc-vet -sarif ./... > nomloc-vet.sarif
//	go run ./cmd/nomloc-vet -baseline vet-baseline.json ./...
//	go run ./cmd/nomloc-vet -callgraph=dot ./... > callgraph.dot
//	go run ./cmd/nomloc-vet -effects=json ./... > effects.json
//
// All loaded packages form one Program (internal/analysis.BuildProgram):
// the analyzers see the whole-module call graph and function summaries,
// so taint, fallibility, lock order, units, and effects flow across
// package boundaries. -callgraph=dot|json dumps that graph instead of
// running the analyzers; -effects=dot|json dumps the inferred
// per-function effect sets the same way. -gate-roots overrides the
// replay-safety gate's root set (comma-separated FuncIDs).
//
// -checks (alias: -analyzers) selects a subset of the suite by name,
// erroring on unknown names; -list enumerates the suite and exits.
//
// Diagnostics print as file:line:col: analyzer: message; -json and
// -sarif emit machine-readable findings with paths relative to the -C
// directory, byte-identical across runs on the same tree. With
// -baseline the exit status ratchets: only findings NOT accounted for
// in the baseline file fail the run (-update-baseline rewrites it).
// Baseline files carry a schema "version"; a mismatch is a typed error
// (BaselineVersionError), never a silent mis-diff.
// Per-analyzer escape hatches (//nomloc:nondeterministic-ok,
// //nomloc:nanguard-ok, //nomloc:errdrop-ok, //nomloc:leakcheck-ok,
// //nomloc:lockorder-ok, //nomloc:unitcheck-ok, //nomloc:effects-ok)
// are honored and audited: a suppression with nothing to suppress is
// itself an error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/nomloc/nomloc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker: 0 clean, 1 findings, 2 usage or load
// failure.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nomloc-vet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var names string
	fs.StringVar(&names, "checks", "", "comma-separated subset of analyzers to run (default: all); unknown names are an error")
	fs.StringVar(&names, "analyzers", "", "alias for -checks")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	dir := fs.String("C", ".", "resolve package patterns relative to this directory")
	jsonOut := fs.Bool("json", false, "emit findings as JSON instead of text")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 instead of text")
	baselinePath := fs.String("baseline", "", "fail only on findings not recorded in this baseline file")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit 0")
	callgraph := fs.String("callgraph", "", "dump the whole-program call graph (dot or json) instead of running analyzers")
	effectsDump := fs.String("effects", "", "dump the inferred effect graph (dot or json) instead of running analyzers")
	gateRoots := fs.String("gate-roots", "", "comma-separated replay-safety gate roots (FuncIDs, full or shortened; default: the solve/replay path)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *callgraph != "" && *callgraph != "dot" && *callgraph != "json" {
		fmt.Fprintf(errOut, "nomloc-vet: -callgraph must be dot or json, got %q\n", *callgraph)
		return 2
	}
	if *effectsDump != "" && *effectsDump != "dot" && *effectsDump != "json" {
		fmt.Fprintf(errOut, "nomloc-vet: -effects must be dot or json, got %q\n", *effectsDump)
		return 2
	}
	if *callgraph != "" && *effectsDump != "" {
		fmt.Fprintln(errOut, "nomloc-vet: -callgraph and -effects are mutually exclusive")
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(errOut, "nomloc-vet: -json and -sarif are mutually exclusive")
		return 2
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(errOut, "nomloc-vet: -update-baseline requires -baseline")
		return 2
	}
	if *gateRoots != "" {
		var roots []string
		for _, r := range strings.Split(*gateRoots, ",") {
			if r = strings.TrimSpace(r); r != "" {
				roots = append(roots, r)
			}
		}
		analysis.GateRoots = roots
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if names != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, n := range strings.Split(names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(errOut, "nomloc-vet: unknown analyzer %q\n", n)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
		return 2
	}
	prog := analysis.BuildProgram(pkgs)

	if *callgraph != "" {
		var err error
		if *callgraph == "dot" {
			err = prog.Graph.WriteDOT(out)
		} else {
			err = prog.Graph.WriteJSON(out)
		}
		if err != nil {
			fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
			return 2
		}
		return 0
	}
	if *effectsDump != "" {
		var err error
		if *effectsDump == "dot" {
			err = analysis.WriteEffectsDOT(out, prog)
		} else {
			err = analysis.WriteEffectsJSON(out, prog)
		}
		if err != nil {
			fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
			return 2
		}
		return 0
	}

	absDir, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
		return 2
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			diags, err := prog.RunPkg(pkg, a)
			if err != nil {
				fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
				return 2
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer: d.Analyzer,
					File:     relativeTo(absDir, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			}
		}
	}
	sortFindings(findings)

	// The baseline ratchet decides what counts against the exit status;
	// the exporters always carry the full current picture.
	failing := findings
	if *baselinePath != "" {
		if *updateBaseline {
			if err := writeBaseline(*baselinePath, findings); err != nil {
				fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
				return 2
			}
			fmt.Fprintf(errOut, "nomloc-vet: baseline %s updated with %d finding(s)\n", *baselinePath, len(findings))
			return 0
		}
		baseline, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
			return 2
		}
		news, stale := diffBaseline(findings, baseline)
		if stale > 0 {
			fmt.Fprintf(errOut, "nomloc-vet: note: %d baselined finding(s) no longer occur; run -update-baseline to ratchet down\n", stale)
		}
		failing = news
	}

	switch {
	case *jsonOut:
		if err := writeJSON(out, findings); err != nil {
			fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(out, findings, suite); err != nil {
			fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
			return 2
		}
	default:
		for _, f := range failing {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(failing) > 0 {
		label := "finding(s)"
		if *baselinePath != "" {
			label = "new finding(s) beyond baseline"
		}
		fmt.Fprintf(errOut, "nomloc-vet: %d %s\n", len(failing), label)
		return 1
	}
	return 0
}

// relativeTo rewrites filename relative to dir with forward slashes,
// falling back to the input when it lives outside dir. Keeping paths
// tree-relative makes every output mode byte-stable across checkouts.
func relativeTo(dir, filename string) string {
	rel, err := filepath.Rel(dir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
