// Command nomloc-vet is the multichecker for NomLoc's determinism and
// concurrency contract. It composes the internal/analysis suite —
// detrand, seedmix, floateq, locksafe — over `go list` package patterns
// and exits nonzero when any analyzer reports a finding, so CI can gate
// merges on the contract the same way it gates on tests:
//
//	go run ./cmd/nomloc-vet ./...
//	go run ./cmd/nomloc-vet -analyzers detrand,seedmix ./internal/eval/
//
// Diagnostics print as file:line:col: analyzer: message. The escape
// hatch //nomloc:nondeterministic-ok (detrand only) is honored and
// audited: a suppression with nothing to suppress is itself an error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/nomloc/nomloc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker: 0 clean, 1 findings, 2 usage or load
// failure.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nomloc-vet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	dir := fs.String("C", ".", "resolve package patterns relative to this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(errOut, "nomloc-vet: unknown analyzer %q\n", n)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
		return 2
	}

	type finding struct {
		pos  string
		line string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			diags, err := pkg.Run(a)
			if err != nil {
				fmt.Fprintf(errOut, "nomloc-vet: %v\n", err)
				return 2
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					pos:  pos.String(),
					line: fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		fmt.Fprintln(out, f.line)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "nomloc-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
