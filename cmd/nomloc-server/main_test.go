package main

import (
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scenario", "warehouse"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}); err == nil || !strings.Contains(err.Error(), "listen") {
		t.Errorf("bad addr err = %v", err)
	}
	if err := run([]string{"-wat"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-standby"}); err == nil || !strings.Contains(err.Error(), "-journal") {
		t.Errorf("-standby without -journal err = %v", err)
	}
	if err := run([]string{"-replicate-to", "127.0.0.1:7101"}); err == nil || !strings.Contains(err.Error(), "-journal") {
		t.Errorf("-replicate-to without -journal err = %v", err)
	}
}
