// Command nomloc-server runs the localization server (the top tier of the
// paper's Fig. 2 architecture) on a TCP address. AP agents
// (cmd/nomloc-ap) and the object (cmd/nomloc-object) connect to it.
//
// Usage:
//
//	nomloc-server -addr 127.0.0.1:7100 -scenario lab
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/replica"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nomloc-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nomloc-server", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7100", "listen address")
	httpAddr := fs.String("http", "", "also serve the monitoring API (GET /healthz, /status, /estimates, /metrics, /debug/pprof/) on this address")
	scenario := fs.String("scenario", "lab", "scenario providing the area of interest")
	workers := fs.Int("workers", 0, "concurrent localization solves (0/1 serialized, -1 = one per CPU)")
	journalDir := fs.String("journal", "", "durable round journal directory (DESIGN.md §12); a restart recovers and resumes from it")
	snapEvery := fs.Int("journal-snapshot-every", 64, "solved rounds between journal snapshots (with -journal)")
	standby := fs.Bool("standby", false, "run as a replication standby (DESIGN.md §14): reject agents, apply the primary's journal stream, serve after promotion (POST /promote on -http); requires -journal")
	epoch := fs.Uint64("epoch", 1, "replication fencing epoch; a promoted standby adopts epoch+1 and rejects lower-epoch streams")
	replicateTo := fs.String("replicate-to", "", "stream this server's journal to a standby at this address (requires -journal)")
	verbose := fs.Bool("v", false, "verbose logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scn, err := deploy.ByName(*scenario)
	if err != nil {
		return err
	}
	reg := telemetry.New(nil)
	loc, err := core.New(core.Config{
		Area:    scn.Area,
		Metrics: telemetry.NewSolveMetrics(reg),
	})
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	if *standby && *journalDir == "" {
		return errors.New("-standby requires -journal (the standby applies the primary's stream durably)")
	}
	if *replicateTo != "" && *journalDir == "" {
		return errors.New("-replicate-to requires -journal (replication streams the journal)")
	}
	var jnl *journal.Journal
	if *journalDir != "" {
		// The clock feeds only the recovery-duration metric; journal
		// bytes stay clock-free.
		jnl, err = journal.Open(journal.Options{Dir: *journalDir, Clock: time.Now, Telemetry: reg})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := jnl.Close(); cerr != nil && !errors.Is(cerr, journal.ErrClosed) {
				log.Printf("nomloc-server: journal close: %v", cerr)
			}
		}()
		st := jnl.Stats()
		log.Printf("nomloc-server: journal %s: recovered %d record(s) through seq %d in %v (%d segment(s), %d torn byte(s) truncated)",
			*journalDir, st.Records, st.LastSeq, st.Duration, st.Segments, st.TruncatedBytes)
	}
	srv, err := server.New(server.Config{
		ID:                   "nomloc-server",
		Localizer:            loc,
		Workers:              *workers,
		Telemetry:            reg,
		Logf:                 logf,
		Journal:              jnl,
		JournalSnapshotEvery: *snapEvery,
		Standby:              *standby,
		Epoch:                *epoch,
	})
	if err != nil {
		return err
	}

	// Stream the journal to a standby: the sender follows the live tail
	// and reconnects on transport loss; a fencing rejection (this node
	// was deposed) is terminal and logged.
	var repl *replica.Sender
	if *replicateTo != "" {
		repl, err = replica.NewSender(replica.Config{
			Journal:  jnl,
			Addr:     *replicateTo,
			ServerID: "nomloc-server",
			Epoch:    *epoch,
			Logf:     logf,
		})
		if err != nil {
			return err
		}
		go func() {
			if rerr := repl.Run(); rerr != nil && !errors.Is(rerr, replica.ErrSenderClosed) {
				log.Printf("nomloc-server: replication to %s stopped: %v", *replicateTo, rerr)
			}
		}()
		log.Printf("nomloc-server: replicating journal to %s (epoch %d)", *replicateTo, *epoch)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	role := "serving"
	if *standby {
		role = "standing by for"
	}
	log.Printf("nomloc-server: %s scenario %q on %s (epoch %d)", role, scn.Name, ln.Addr(), *epoch)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.StatusHandler()}
		go func() {
			log.Printf("nomloc-server: monitoring API on %s", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("nomloc-server: http: %v", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM.
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("nomloc-server: %v, shutting down", s)
		if repl != nil {
			repl.Close()
		}
		if httpSrv != nil {
			_ = httpSrv.Close()
		}
		srv.Shutdown()
		<-serveErr
		return nil
	case err := <-serveErr:
		if repl != nil {
			repl.Close()
		}
		if httpSrv != nil {
			_ = httpSrv.Close()
		}
		return err
	}
}
