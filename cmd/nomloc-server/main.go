// Command nomloc-server runs the localization server (the top tier of the
// paper's Fig. 2 architecture) on a TCP address. AP agents
// (cmd/nomloc-ap) and the object (cmd/nomloc-object) connect to it.
//
// Usage:
//
//	nomloc-server -addr 127.0.0.1:7100 -scenario lab
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nomloc-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nomloc-server", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7100", "listen address")
	httpAddr := fs.String("http", "", "also serve the monitoring API (GET /healthz, /status, /estimates, /metrics, /debug/pprof/) on this address")
	scenario := fs.String("scenario", "lab", "scenario providing the area of interest")
	workers := fs.Int("workers", 0, "concurrent localization solves (0/1 serialized, -1 = one per CPU)")
	journalDir := fs.String("journal", "", "durable round journal directory (DESIGN.md §12); a restart recovers and resumes from it")
	snapEvery := fs.Int("journal-snapshot-every", 64, "solved rounds between journal snapshots (with -journal)")
	verbose := fs.Bool("v", false, "verbose logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scn, err := deploy.ByName(*scenario)
	if err != nil {
		return err
	}
	reg := telemetry.New(nil)
	loc, err := core.New(core.Config{
		Area:    scn.Area,
		Metrics: telemetry.NewSolveMetrics(reg),
	})
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	var jnl *journal.Journal
	if *journalDir != "" {
		// The clock feeds only the recovery-duration metric; journal
		// bytes stay clock-free.
		jnl, err = journal.Open(journal.Options{Dir: *journalDir, Clock: time.Now, Telemetry: reg})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := jnl.Close(); cerr != nil && !errors.Is(cerr, journal.ErrClosed) {
				log.Printf("nomloc-server: journal close: %v", cerr)
			}
		}()
		st := jnl.Stats()
		log.Printf("nomloc-server: journal %s: recovered %d record(s) through seq %d in %v (%d segment(s), %d torn byte(s) truncated)",
			*journalDir, st.Records, st.LastSeq, st.Duration, st.Segments, st.TruncatedBytes)
	}
	srv, err := server.New(server.Config{
		ID:                   "nomloc-server",
		Localizer:            loc,
		Workers:              *workers,
		Telemetry:            reg,
		Logf:                 logf,
		Journal:              jnl,
		JournalSnapshotEvery: *snapEvery,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	log.Printf("nomloc-server: serving scenario %q on %s", scn.Name, ln.Addr())

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.StatusHandler()}
		go func() {
			log.Printf("nomloc-server: monitoring API on %s", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("nomloc-server: http: %v", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM.
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("nomloc-server: %v, shutting down", s)
		if httpSrv != nil {
			_ = httpSrv.Close()
		}
		srv.Shutdown()
		<-serveErr
		return nil
	case err := <-serveErr:
		if httpSrv != nil {
			_ = httpSrv.Close()
		}
		return err
	}
}
