package main

import "testing"

func TestRunSingleFigure(t *testing.T) {
	// Figure 3 is cheap (no localization loop).
	if err := run([]string{"-fig", "3"}); err != nil {
		t.Fatalf("fig 3: %v", err)
	}
}

func TestRunFig8Tiny(t *testing.T) {
	if err := run([]string{"-fig", "8", "-packets", "5", "-trials", "1"}); err != nil {
		t.Fatalf("fig 8: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestMaxOf(t *testing.T) {
	if got := maxOf([]float64{1, 5, 2}); got != 5 {
		t.Errorf("maxOf = %v", got)
	}
	if got := maxOf(nil); got != 0 {
		t.Errorf("maxOf(nil) = %v", got)
	}
}
