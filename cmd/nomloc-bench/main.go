// Command nomloc-bench regenerates every figure of the paper's evaluation
// (§V) plus the repository's ablation studies, printing the rows/series a
// plotting script would consume. EXPERIMENTS.md is produced from this
// tool's output.
//
// Usage:
//
//	nomloc-bench                  # everything
//	nomloc-bench -fig 8           # one figure
//	nomloc-bench -fig ablation    # the ablation suite
//	nomloc-bench -fig speedup     # parallel-harness speedup report
//	nomloc-bench -packets 30 -trials 8 -seed 5 -workers -1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/eval"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nomloc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nomloc-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 3, 7, 8, 9, 10, ablation, ext, all")
	packets := fs.Int("packets", 25, "probe packets per AP position")
	trials := fs.Int("trials", 5, "localization trials per test site")
	walk := fs.Int("walk", 10, "nomadic random-walk steps per round")
	seed := fs.Int64("seed", 1, "experiment seed")
	workers := fs.Int("workers", 0, "harness worker pool size (0/1 sequential, -1 = all CPUs); results are identical at every setting")
	withTelemetry := fs.Bool("telemetry", false, "collect solve/pool telemetry and print the final snapshot as JSON; figures are bit-identical either way")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := eval.Options{
		PacketsPerSite: *packets,
		TrialsPerSite:  *trials,
		WalkSteps:      *walk,
		Seed:           *seed,
		Workers:        *workers,
	}
	if *withTelemetry {
		opt.Telemetry = telemetry.New(nil)
	}

	runners := map[string]func(eval.Options) error{
		"3":        fig3,
		"7":        fig7,
		"8":        fig8,
		"9":        fig9,
		"10":       fig10,
		"ablation": ablations,
		"ext":      extension,
		"speedup":  speedup,
	}
	if *fig == "all" {
		for _, key := range []string{"3", "7", "8", "9", "10", "ablation", "ext", "speedup"} {
			if err := runners[key](opt); err != nil {
				return fmt.Errorf("fig %s: %w", key, err)
			}
		}
		return dumpTelemetry(opt)
	}
	r, ok := runners[*fig]
	if !ok {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	if err := r(opt); err != nil {
		return err
	}
	return dumpTelemetry(opt)
}

// dumpTelemetry prints the run's final telemetry snapshot as indented
// JSON when -telemetry is set.
func dumpTelemetry(opt eval.Options) error {
	if opt.Telemetry == nil {
		return nil
	}
	header("Telemetry snapshot")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(opt.Telemetry.Snapshot())
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func fig3(eval.Options) error {
	header("Fig. 3 — channel response delay profile, LOS vs NLOS")
	scn, err := deploy.Lab()
	if err != nil {
		return err
	}
	res, err := eval.RunFig3(scn, 8)
	if err != nil {
		return err
	}
	fmt.Printf("LOS link:  %s\nNLOS link: %s\n", res.LOSLink, res.NLOSLink)
	fmt.Printf("bin delay: %.2f ns\n\n", res.BinDelayNs)
	fmt.Println("delay(ns)  LOS-amp      NLOS-amp")
	// Print the first 1.5 µs like the paper's x-axis, decimated ×4.
	for i := 0; i < len(res.LOS.X) && res.LOS.X[i] <= 1500; i += 4 {
		fmt.Printf("%9.1f  %.4e  %.4e\n", res.LOS.X[i], res.LOS.Y[i], res.NLOS.Y[i])
	}
	losPeak, nlosPeak := maxOf(res.LOS.Y), maxOf(res.NLOS.Y)
	fmt.Printf("\npeak power: LOS %.3e, NLOS %.3e (ratio %.1f×)\n",
		losPeak, nlosPeak, losPeak/nlosPeak)
	return nil
}

func fig7(opt eval.Options) error {
	header("Fig. 7 — PDP-based proximity determination accuracy")
	for _, name := range deploy.Names() {
		scn, err := deploy.ByName(name)
		if err != nil {
			return err
		}
		res, err := eval.RunFig7(scn, opt)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (%d sites, %d pairwise judgements per site per trial):\n",
			name, len(res.Sites), 6)
		fmt.Println("site  accuracy")
		var mean float64
		for i, s := range res.Sites {
			fmt.Printf("%4d  %6.1f%%\n", i+1, 100*s.Accuracy())
			mean += s.Accuracy()
		}
		fmt.Printf("mean  %6.1f%%\n", 100*mean/float64(len(res.Sites)))
	}
	return nil
}

func fig8(opt eval.Options) error {
	header("Fig. 8 — spatial localizability variance, static vs nomadic")
	fmt.Println("scenario  static-SLV  nomadic-SLV  static-mean(m)  nomadic-mean(m)")
	for _, name := range deploy.Names() {
		scn, err := deploy.ByName(name)
		if err != nil {
			return err
		}
		res, err := eval.RunFig8(scn, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %10.2f  %11.2f  %14.2f  %15.2f\n",
			name, res.StaticSLV, res.NomadicSLV, res.StaticMean, res.NomadicMean)
	}
	return nil
}

func fig9(opt eval.Options) error {
	header("Fig. 9 — localization error CDF, static vs nomadic")
	for _, name := range deploy.Names() {
		scn, err := deploy.ByName(name)
		if err != nil {
			return err
		}
		res, err := eval.RunFig9(scn, opt)
		if err != nil {
			return err
		}
		maxErr := 5.0
		if name == "lobby" {
			maxErr = 10.0
		}
		fmt.Printf("\n%s:\nerror(m)  static-CDF  nomadic-CDF\n", name)
		static := res.Static.Sample(maxErr, 10)
		nomadic := res.Nomadic.Sample(maxErr, 10)
		for i := range static {
			fmt.Printf("%8.1f  %10.2f  %11.2f\n", static[i].X, static[i].P, nomadic[i].P)
		}
		s50, _ := res.Static.Percentile(0.5)
		n50, _ := res.Nomadic.Percentile(0.5)
		s90, _ := res.Static.Percentile(0.9)
		n90, _ := res.Nomadic.Percentile(0.9)
		fmt.Printf("median: static %.2f m, nomadic %.2f m | p90: static %.2f m, nomadic %.2f m\n",
			s50, n50, s90, n90)
	}
	return nil
}

func fig10(opt eval.Options) error {
	header("Fig. 10 — effect of nomadic-AP position error (ER)")
	ers := []float64{0, 1, 2, 3}
	for _, name := range deploy.Names() {
		scn, err := deploy.ByName(name)
		if err != nil {
			return err
		}
		res, err := eval.RunFig10(scn, opt, ers)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\nER(m)  median(m)  p90(m)  mean(m)\n", name)
		for i, er := range res.ERs {
			med, err := res.CDFs[i].Percentile(0.5)
			if err != nil {
				return err
			}
			p90, err := res.CDFs[i].Percentile(0.9)
			if err != nil {
				return err
			}
			var sum float64
			pts := res.CDFs[i].Points()
			for _, p := range pts {
				sum += p.X
			}
			fmt.Printf("%5.0f  %9.2f  %6.2f  %7.2f\n", er, med, p90, sum/float64(len(pts)))
		}
	}
	return nil
}

func ablations(opt eval.Options) error {
	header("Ablations (DESIGN.md §4)")
	scn, err := deploy.Lab()
	if err != nil {
		return err
	}

	fmt.Println("\ncenter rule (nomadic, lab):")
	rows, err := eval.RunCenterRuleAblation(scn, opt)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\nnomadic site count (lab):")
	rows, err = eval.RunSiteCountAblation(scn, opt)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\nconfidence weighting (nomadic, lab):")
	rows, err = eval.RunConfidenceAblation(scn, opt)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\nbaseline comparison (static deployment, lab):")
	rows, err = eval.RunBaselineComparisonMode(scn, opt, eval.StaticDeployment)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\nbaseline comparison (nomadic deployment, lab — all methods see the site anchors):")
	rows, err = eval.RunBaselineComparisonMode(scn, opt, eval.NomadicDeployment)
	if err != nil {
		return err
	}
	printRows(rows)

	lobby, err := deploy.Lobby()
	if err != nil {
		return err
	}
	fmt.Println("\nbaseline comparison (nomadic deployment, lobby):")
	rows, err = eval.RunBaselineComparisonMode(lobby, opt, eval.NomadicDeployment)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\nsimulator fidelity (reflection order, nomadic, lab):")
	rows, err = eval.RunFidelityAblation(scn, opt)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\npair policy (nomadic, lab):")
	rows, err = eval.RunPairPolicyAblation(scn, opt)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\nPDP estimator (nomadic, lab):")
	rows, err = eval.RunPDPMethodAblation(scn, opt)
	if err != nil {
		return err
	}
	printRows(rows)

	fmt.Println("\ndeployment optimization (paper §III argument, both scenarios):")
	for _, name := range deploy.Names() {
		s, err := deploy.ByName(name)
		if err != nil {
			return err
		}
		rows, err = eval.RunPlacementAblation(s, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", name)
		printRows(rows)
	}
	return nil
}

func extension(opt eval.Options) error {
	header("Extension — multiple nomadic APs (paper §VI future work)")
	for _, name := range deploy.Names() {
		scn, err := deploy.ByName(name)
		if err != nil {
			return err
		}
		rows, err := eval.RunMultiNomadicExtension(scn, opt, []int{1, 2, 3})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", name)
		printRows(rows)
	}

	header("Extension — nomadic moving patterns (paper §VI future work)")
	for _, name := range deploy.Names() {
		scn, err := deploy.ByName(name)
		if err != nil {
			return err
		}
		// Small budgets separate the strategies: with enough moves every
		// no-revisit pattern covers all waypoints and converges to the
		// same anchor set.
		for _, budget := range []int{1, 2, 3} {
			rows, err := eval.RunMovingPatterns(scn, opt, budget)
			if err != nil {
				return err
			}
			fmt.Printf("\n%s (move budget %d):\n", name, budget)
			printRows(rows)
		}
	}
	return nil
}

// speedup times the Fig. 9 position sweep at several worker counts,
// checks every run is bit-identical to the sequential one, and prints
// wall-clock speedups. This is the table DESIGN.md/README.md quote.
func speedup(opt eval.Options) error {
	header("Parallel harness — speedup vs workers (identical results required)")
	scn, err := deploy.Lab()
	if err != nil {
		return err
	}
	counts := []int{1, 2, 4, parallel.Resolve(-1)}
	fmt.Printf("host CPUs: %d\n\n", runtime.NumCPU())
	fmt.Println("workers  wall-clock  speedup  identical")

	var baseline time.Duration
	var baseErrs []float64
	for _, w := range counts {
		o := opt
		o.Workers = w
		h, err := eval.NewHarness(scn, o)
		if err != nil {
			return err
		}
		start := time.Now()
		results, err := h.RunSites(eval.NomadicDeployment)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		elapsed := time.Since(start)
		errs := flatErrors(results)
		identical := true
		if w == counts[0] {
			baseline, baseErrs = elapsed, errs
		} else {
			identical = len(errs) == len(baseErrs)
			for i := range errs {
				if !identical || errs[i] != baseErrs[i] {
					identical = false
					break
				}
			}
		}
		fmt.Printf("%7d  %10v  %6.2fx  %v\n", w, elapsed.Round(time.Millisecond),
			baseline.Seconds()/elapsed.Seconds(), identical)
		if !identical {
			return fmt.Errorf("workers=%d produced different estimates than workers=%d", w, counts[0])
		}
	}
	return nil
}

// flatErrors concatenates every per-trial error in site order.
func flatErrors(results []eval.SiteResult) []float64 {
	var out []float64
	for _, r := range results {
		out = append(out, r.Errors...)
	}
	return out
}

func printRows(rows []eval.AblationRow) {
	fmt.Println("variant            mean-error(m)  SLV")
	for _, r := range rows {
		fmt.Printf("%-18s %13.2f  %5.2f\n", r.Variant, r.MeanError, r.SLVValue)
	}
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
