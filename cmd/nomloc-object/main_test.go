package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scenario", "warehouse"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	// Position outside the area.
	if err := run([]string{"-scenario", "lab", "-x", "99", "-y", "99"}); err == nil {
		t.Error("outside position accepted")
	}
	// Valid position, unreachable server.
	if err := run([]string{"-scenario", "lab", "-x", "6", "-y", "4", "-server", "127.0.0.1:1"}); err == nil {
		t.Error("dial to closed port succeeded")
	}
	if err := run([]string{"-junkflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
