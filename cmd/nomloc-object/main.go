// Command nomloc-object runs the object agent: it transmits probe bursts
// through a running nomloc-server to the registered APs and prints the
// location estimates the server computes.
//
// Start the server and the four APs first (see cmd/nomloc-server and
// cmd/nomloc-ap), then:
//
//	nomloc-object -server 127.0.0.1:7100 -scenario lab -x 6 -y 4.5 -rounds 6
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/nomloc/nomloc/internal/agent"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nomloc-object:", err)
		os.Exit(1)
	}
}

// runRound drives one measurement round, retrying through failover
// windows: a lost session or a missed estimate can mean the server just
// died, and the background Run loop needs a moment to reach a fallback
// from the dial list. Redelivered reports are absorbed idempotently by
// the server's finished-round memory, so replaying the round is safe.
// The retry budget is tied to -max-reconnects, so 0 keeps the old
// fail-fast contract.
func runRound(obj *agent.ObjectAgent, round uint64, retries int) (wire.Estimate, error) {
	for attempt := 0; ; attempt++ {
		est, err := obj.RunRound(round)
		if err == nil || attempt >= retries ||
			!(errors.Is(err, agent.ErrSessionLost) || errors.Is(err, agent.ErrNoEstimate)) {
			return est, err
		}
		log.Printf("nomloc-object: round %d attempt %d: %v (retrying)", round, attempt+1, err)
		time.Sleep(250 * time.Millisecond)
	}
}

// splitAddrs turns the -server value into a failover dial list: one
// address, or a comma-separated list with the primary first.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func run(args []string) error {
	fs := flag.NewFlagSet("nomloc-object", flag.ContinueOnError)
	serverAddr := fs.String("server", "127.0.0.1:7100", "localization server address, or a comma-separated failover list (primary first; fallbacks tried in a per-agent seeded order on failed handshakes)")
	scenario := fs.String("scenario", "lab", "scenario for the channel physics")
	x := fs.Float64("x", 6, "object true x (m)")
	y := fs.Float64("y", 4, "object true y (m)")
	rounds := fs.Int("rounds", 6, "measurement rounds to run")
	packets := fs.Int("packets", 25, "probe packets per round")
	maxReconnects := fs.Int("max-reconnects", 8, "reconnect attempts after a lost session (0 disables; failover needs this to reach a promoted standby)")
	seed := fs.Int64("seed", 1, "noise seed")
	metricsAddr := fs.String("metrics", "", "serve GET /metrics and /debug/pprof/ on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scn, err := deploy.ByName(*scenario)
	if err != nil {
		return err
	}
	truth := geom.V(*x, *y)
	if !scn.Area.Contains(truth) {
		return fmt.Errorf("object position %v is outside the %s area", truth, scn.Name)
	}
	sim, err := scn.Simulator()
	if err != nil {
		return err
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.New(nil)
		mux := http.NewServeMux()
		telemetry.RegisterDebug(mux, reg)
		go func() {
			log.Printf("nomloc-object: metrics on %s", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("nomloc-object: metrics: %v", err)
			}
		}()
	}

	obj, err := agent.DialObject(agent.ObjectConfig{
		ID:            "object-1",
		ServerAddrs:   splitAddrs(*serverAddr),
		Pos:           truth,
		Sim:           sim,
		Packets:       *packets,
		MaxReconnects: *maxReconnects,
		Seed:          *seed,
		Telemetry:     reg,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}
	for _, ap := range scn.AllAPsStatic() {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- obj.Run() }()

	fmt.Printf("object at %v, %d rounds of %d packets via %s\n",
		truth, *rounds, *packets, *serverAddr)
	fmt.Println("round  estimate          error(m)  anchors")
	for r := uint64(1); r <= uint64(*rounds); r++ {
		est, err := runRound(obj, r, *maxReconnects)
		if err != nil {
			obj.Close()
			<-runErr
			return fmt.Errorf("round %d: %w", r, err)
		}
		fmt.Printf("%5d  %-16v  %8.2f  %7d\n", r, est.Pos, est.Pos.Dist(truth), est.NumAnchors)
	}

	obj.Close()
	if err := <-runErr; err != nil && !errors.Is(err, agent.ErrClosed) {
		return err
	}
	return nil
}
