package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallExperiment(t *testing.T) {
	err := run([]string{
		"-scenario", "lab", "-mode", "static",
		"-packets", "6", "-trials", "1",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-scenario", "warehouse"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-mode", "teleport"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunRecordReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.gz")
	if err := run([]string{
		"-scenario", "lab", "-mode", "static",
		"-packets", "6", "-trials", "1", "-record", path,
	}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := run([]string{"-replay", path}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.gz")}); err == nil {
		t.Error("missing replay file accepted")
	}
}

func TestRunWithMap(t *testing.T) {
	err := run([]string{
		"-scenario", "lab", "-mode", "static",
		"-packets", "6", "-trials", "1", "-map", "3",
	})
	if err != nil {
		t.Fatalf("run with map: %v", err)
	}
}

func TestReplayScenarioFallback(t *testing.T) {
	// replayCampaign falls back to the flag scenario when the dataset
	// names none — exercised via an unknown scenario flag + missing file
	// to keep it cheap.
	err := replayCampaign(filepath.Join(t.TempDir(), "nope.gz"), "lab")
	if err == nil || !strings.Contains(err.Error(), "open") {
		t.Errorf("err = %v", err)
	}
}

func TestRunChaosMode(t *testing.T) {
	// lossy seed 3 deterministically drops one report, so the run must
	// fail with the typed degraded-run error CI asserts on — and its
	// message must be a single line.
	err := run([]string{
		"-scenario", "lab", "-chaos-profile", "lossy",
		"-chaos-seed", "3", "-rounds", "3", "-packets", "4",
	})
	var de *DegradedRunError
	if !errors.As(err, &de) {
		t.Fatalf("chaos run: %v, want DegradedRunError", err)
	}
	if de.Degraded == 0 && de.Empty == 0 {
		t.Errorf("degraded error with zero counts: %+v", de)
	}
	if de.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", de.Rounds)
	}
	if strings.Contains(de.Error(), "\n") {
		t.Errorf("error message spans lines: %q", de.Error())
	}
	if err := run([]string{"-chaos-profile", "hurricane"}); err == nil {
		t.Error("unknown chaos profile accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// whatever fn printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	_ = w.Close()
	out, readErr := io.ReadAll(r)
	_ = r.Close()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out)
}

// TestFailoverDrillByteIdentical: the kill-mode drill (primary dies
// mid-run, standby drains, promotes, fences, finishes) must print an
// estimate stream byte-identical to the uninterrupted golden run — the
// cmd-level version of the chaos conformance keystone.
func TestFailoverDrillByteIdentical(t *testing.T) {
	args := func(mode string) []string {
		return []string{"-failover-drill", mode, "-rounds", "4", "-seed", "11"}
	}
	golden := captureStdout(t, func() error { return run(args("golden")) })
	kill := captureStdout(t, func() error { return run(args("kill")) })
	if golden == "" || !strings.Contains(golden, "estimate round=1") {
		t.Fatalf("golden output looks wrong:\n%s", golden)
	}
	if kill != golden {
		t.Errorf("kill-mode estimate stream diverged from golden:\n--- golden ---\n%s--- kill ---\n%s", golden, kill)
	}

	if err := run([]string{"-failover-drill", "meteor"}); err == nil {
		t.Error("unknown drill mode accepted")
	}
	if err := run([]string{"-failover-drill", "kill", "-rounds", "1"}); err == nil {
		t.Error("single-round drill accepted (cannot kill mid-run)")
	}
}
