package main

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/agent"
	"github.com/nomloc/nomloc/internal/chaos"
	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/telemetry"
)

// runChaos runs the scenario's distributed stack — real server, AP and
// object agents over localhost TCP — with every AP connection routed
// through the chaos fault injector, then prints the per-round estimates,
// the deterministic fault trace summary, and the resilience counters.
// The same -chaos-seed replays the exact same failure sequence.
func runChaos(scenario, profile string, chaosSeed int64, rounds, packets int, seed int64) error {
	scn, err := deploy.ByName(scenario)
	if err != nil {
		return err
	}
	plan, err := chaos.Profile(profile, chaosSeed)
	if err != nil {
		return err
	}
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		return err
	}
	reg := telemetry.New(nil)
	cn, err := chaos.New(plan, chaos.Options{Telemetry: reg})
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Localizer:    loc,
		RoundTimeout: 500 * time.Millisecond,
		Telemetry:    reg,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()

	newAP := func(cfg agent.APConfig) (*agent.APAgent, error) {
		cfg.ServerAddr = addr
		cfg.Telemetry = reg
		cfg.Dialer = cn.Dialer(cfg.ID, nil)
		cfg.MaxReconnects = 20
		cfg.ReconnectBase = 5 * time.Millisecond
		cfg.ReconnectMax = 100 * time.Millisecond
		return agent.DialAP(cfg)
	}
	var aps []*agent.APAgent
	for i, ap := range scn.StaticAPs {
		a, err := newAP(agent.APConfig{ID: ap.ID, Sites: []geom.Vec{ap.Pos}, Seed: int64(i + 1)})
		if err != nil {
			return fmt.Errorf("dial %s: %w", ap.ID, err)
		}
		aps = append(aps, a)
	}
	if scn.Nomadic.ID != "" {
		a, err := newAP(agent.APConfig{
			ID: scn.Nomadic.ID, Sites: scn.Nomadic.AllSites(), Nomadic: true, Seed: 99,
		})
		if err != nil {
			return fmt.Errorf("dial %s: %w", scn.Nomadic.ID, err)
		}
		aps = append(aps, a)
	}
	for _, a := range aps {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run() // chaos runs can end with a lost session; counters tell the story
		}()
	}

	sim, err := scn.Simulator()
	if err != nil {
		return err
	}
	obj, err := agent.DialObject(agent.ObjectConfig{
		ID:           "obj1",
		ServerAddr:   addr,
		Pos:          scn.TestSites[0],
		Sim:          sim,
		Packets:      packets,
		RoundTimeout: 5 * time.Second,
		Seed:         seed,
		Telemetry:    reg,
	})
	if err != nil {
		return err
	}
	for _, ap := range scn.StaticAPs {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	if scn.Nomadic.ID != "" {
		obj.RegisterAP(scn.Nomadic.ID, scn.Nomadic.Home)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = obj.Run()
	}()

	fmt.Printf("chaos profile %s (seed %d) on scenario %s — %d APs, object at %v, %d rounds\n\n",
		profile, chaosSeed, scn.Name, len(aps), scn.TestSites[0], rounds)
	truth := scn.TestSites[0]
	for r := 1; r <= rounds; r++ {
		est, err := obj.RunRound(uint64(r))
		switch {
		case errors.Is(err, agent.ErrNoEstimate):
			fmt.Printf("round %3d: lost (no estimate before the round deadline)\n", r)
		case err != nil:
			fmt.Printf("round %3d: error: %v\n", r, err)
		default:
			fmt.Printf("round %3d: estimate %v  error %.2f m\n", r, est.Pos, est.Pos.Sub(truth).Len())
		}
	}

	obj.Close()
	for _, a := range aps {
		a.Close()
	}
	srv.Shutdown()
	wg.Wait()

	tr := cn.Trace()
	fmt.Printf("\nfault trace: %d events (replayable with -chaos-seed %d)\n", tr.Len(), chaosSeed)
	counts := tr.CountByFault()
	for _, f := range chaos.Faults() {
		if counts[f] > 0 {
			fmt.Printf("  %-9s %d\n", f, counts[f])
		}
	}
	printResilienceCounters(reg)

	// CI chaos jobs assert on this: any round that finalized through the
	// degraded or empty path makes the whole run exit non-zero, with one
	// summary line on stderr (printed by main's error handler).
	degraded := uint64(reg.Counter("nomloc_server_degraded_rounds_total", "").Value())
	empty := uint64(reg.Counter("nomloc_server_empty_rounds_total", "").Value())
	if degraded > 0 || empty > 0 {
		return &DegradedRunError{Degraded: degraded, Empty: empty, Rounds: rounds}
	}
	return nil
}

// DegradedRunError reports a chaos run in which at least one round
// finalized through the server's degraded path (fewer reports than
// expected) or the ErrEmptyRound path (no reports at all). The run still
// printed its full output; this error only changes the exit status.
type DegradedRunError struct {
	Degraded uint64 // rounds solved with fewer reports than expected
	Empty    uint64 // rounds that finalized with no reports (ErrEmptyRound)
	Rounds   int    // rounds the run attempted
}

func (e *DegradedRunError) Error() string {
	return fmt.Sprintf("%d of %d round(s) degraded, %d empty — the run completed but lost coverage",
		e.Degraded, e.Rounds, e.Empty)
}

// printResilienceCounters prints the chaos/degraded-mode counter families
// in sorted order so the output is stable across runs.
func printResilienceCounters(reg *telemetry.Registry) {
	want := map[string]bool{
		"nomloc_chaos_dials_total":              true,
		"nomloc_chaos_dial_failures_total":      true,
		"nomloc_chaos_frames_total":             true,
		"nomloc_ap_reconnects_total":            true,
		"nomloc_ap_resends_total":               true,
		"nomloc_object_reconnects_total":        true,
		"nomloc_server_degraded_rounds_total":   true,
		"nomloc_server_empty_rounds_total":      true,
		"nomloc_server_duplicate_reports_total": true,
		"nomloc_server_stale_reports_total":     true,
		"nomloc_server_bad_frames_total":        true,
		"nomloc_server_evicted_sessions_total":  true,
	}
	var lines []string
	for _, m := range reg.Snapshot().Metrics {
		if !want[m.Name] && !strings.HasPrefix(m.Name, "nomloc_chaos_faults") {
			continue
		}
		if m.Value == 0 {
			continue
		}
		var lbl string
		if len(m.Labels) > 0 {
			var kv []string
			for k, v := range m.Labels {
				kv = append(kv, fmt.Sprintf("%s=%s", k, v))
			}
			sort.Strings(kv)
			lbl = "{" + strings.Join(kv, ",") + "}"
		}
		lines = append(lines, fmt.Sprintf("  %s%s %g", m.Name, lbl, m.Value))
	}
	sort.Strings(lines)
	fmt.Println("\nresilience counters:")
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(lines) == 0 {
		fmt.Println("  (none fired)")
	}
}
