// Command nomloc-sim runs one scenario end-to-end in-process and prints
// per-site localization errors plus the summary metrics.
//
// Usage:
//
//	nomloc-sim -scenario lab -mode nomadic -trials 5
//	nomloc-sim -scenario lobby -mode static -packets 40
//	nomloc-sim -scenario lab -mode nomadic -er 2      # ER study
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/dataset"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nomloc-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nomloc-sim", flag.ContinueOnError)
	scenario := fs.String("scenario", "lab", "scenario: lab or lobby")
	mode := fs.String("mode", "nomadic", "deployment: static or nomadic")
	packets := fs.Int("packets", 25, "probe packets per AP position")
	trials := fs.Int("trials", 5, "trials per test site")
	walk := fs.Int("walk", 10, "nomadic random-walk steps")
	er := fs.Float64("er", 0, "nomadic AP position error range in meters")
	seed := fs.Int64("seed", 1, "experiment seed")
	mapSpacing := fs.Float64("map", 0, "also print a localizability heat map with this grid spacing in meters (0 = off)")
	record := fs.String("record", "", "record the campaign's raw CSI batches to this file (gzip JSON)")
	replay := fs.String("replay", "", "skip measurement and replay a recorded campaign file instead")
	plan := fs.Bool("plan", false, "print the scenario floor plan before running")
	chaosProfile := fs.String("chaos-profile", "", "run the distributed stack under a fault profile: lossy, flaky, or partition")
	chaosSeed := fs.Int64("chaos-seed", 1, "chaos schedule seed; the same seed replays the same fault trace")
	rounds := fs.Int("rounds", 10, "rounds to run in chaos or failover-drill mode")
	failoverDrill := fs.String("failover-drill", "", "run the primary/standby failover drill: golden (uninterrupted) or kill (primary dies mid-run); both print a byte-comparable estimate stream")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *replay != "" {
		return replayCampaign(*replay, *scenario)
	}
	if *chaosProfile != "" {
		return runChaos(*scenario, *chaosProfile, *chaosSeed, *rounds, *packets, *seed)
	}
	if *failoverDrill != "" {
		return runFailoverDrill(*failoverDrill, *rounds, *seed)
	}

	scn, err := deploy.ByName(*scenario)
	if err != nil {
		return err
	}
	var m eval.Mode
	switch *mode {
	case "static":
		m = eval.StaticDeployment
	case "nomadic":
		m = eval.NomadicDeployment
	default:
		return fmt.Errorf("unknown -mode %q (want static or nomadic)", *mode)
	}

	h, err := eval.NewHarness(scn, eval.Options{
		PacketsPerSite: *packets,
		TrialsPerSite:  *trials,
		WalkSteps:      *walk,
		PositionErrorM: *er,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}

	if *plan {
		fmt.Print(scn.ASCII(0.5))
		fmt.Println()
	}
	fmt.Printf("scenario %s — %d static APs, nomadic %s with %d waypoints, %d test sites\n",
		scn.Name, len(scn.StaticAPs), scn.Nomadic.ID, len(scn.Nomadic.Waypoints), len(scn.TestSites))
	fmt.Printf("mode %s, %d packets/site, %d trials/site, ER %.1f m, seed %d\n\n",
		m, *packets, *trials, *er, *seed)

	results, err := h.RunSites(m)
	if err != nil {
		return err
	}
	fmt.Println("site  truth             mean-error(m)")
	for i, r := range results {
		fmt.Printf("%4d  %-16v  %12.2f\n", i+1, r.Site, r.MeanError)
	}
	errs := eval.MeanErrors(results)
	cdf, err := eval.NewCDF(errs)
	if err != nil {
		return err
	}
	med, err := cdf.Percentile(0.5)
	if err != nil {
		return err
	}
	p90, err := cdf.Percentile(0.9)
	if err != nil {
		return err
	}
	fmt.Printf("\nmean %.2f m | median %.2f m | p90 %.2f m | SLV %.2f\n",
		eval.Mean(errs), med, p90, eval.SLV(errs))

	if *mapSpacing > 0 {
		lm, err := h.RunLocalizabilityMap(m, *mapSpacing, *trials)
		if err != nil {
			return fmt.Errorf("localizability map: %w", err)
		}
		worstAt, worst := lm.WorstPoint()
		fmt.Printf("\nlocalizability map (%d grid points, spacing %.1f m):\n%s",
			len(lm.Points), lm.Spacing, lm.ASCII())
		fmt.Printf("map mean %.2f m | map SLV %.2f | worst %.2f m at %v\n",
			lm.MeanError(), lm.SLV(), worst, worstAt)
	}

	if *record != "" {
		ds, err := h.RecordDataset(m)
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		if err := ds.SaveFile(*record); err != nil {
			return err
		}
		fmt.Printf("\nrecorded %d rounds (%d CSI samples) to %s\n",
			len(ds.Records), ds.NumSamples(), *record)
	}
	return nil
}

// replayCampaign re-runs the SP pipeline over a recorded campaign file.
func replayCampaign(path, scenario string) error {
	ds, err := dataset.LoadFile(path)
	if err != nil {
		return err
	}
	if ds.Scenario != "" {
		scenario = ds.Scenario
	}
	scn, err := deploy.ByName(scenario)
	if err != nil {
		return err
	}
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		return err
	}
	results, err := eval.ReplayDataset(loc, ds)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d rounds from %s (scenario %s, mode %s)\n",
		len(results), path, ds.Scenario, ds.Mode)
	fmt.Println("round  truth             estimate          error(m)")
	for i, r := range results {
		fmt.Printf("%5d  %-16v  %-16v  %8.2f\n", i+1, r.Truth, r.Estimate, r.Error)
	}
	errs := eval.ReplayErrors(results)
	fmt.Printf("\nmean %.2f m | SLV %.2f\n", eval.Mean(errs), eval.SLV(errs))
	return nil
}
