package main

// The failover drill exercises the full primary/standby runbook from the
// command line (DESIGN.md §14): a journaled primary streams to a live
// standby, dies between rounds, the standby drains the remainder off
// disk, promotes with a bumped epoch, fences the deposed primary, and
// finishes the run. Driven at the wire level with seeded deterministic
// reports, so the estimate stream on stdout is byte-identical between
//
//	nomloc-sim -failover-drill golden -seed N   (no failure)
//	nomloc-sim -failover-drill kill   -seed N   (primary killed mid-run)
//
// CI diffs the two outputs for several seeds; narrative goes to stderr.

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/replica"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/wire"
)

// drillStream tags the RNG streams that generate drill report content,
// one per AP, mixed with the round so a redelivered round reproduces the
// same bytes.
const drillStream = 0xd811

// drillServerID is the service identity both drill nodes share.
const drillServerID = "nomloc-drill"

// drillAPs is the fixed two-AP deployment the drill drives.
var drillAPs = []struct {
	id  string
	pos geom.Vec
}{
	{"ap1", geom.V(1, 1)},
	{"ap2", geom.V(11, 7)},
}

// drillNode is one journal-backed server endpoint of the drill pair.
type drillNode struct {
	srv  *server.Server
	j    *journal.Journal
	ln   net.Listener
	addr string
}

// startDrillNode opens the journal in dir and serves on an ephemeral
// localhost port, as a primary or a fenced standby.
func startDrillNode(dir string, standby bool, epoch uint64) (*drillNode, error) {
	j, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	loc, err := core.New(core.Config{Area: geom.Rect(0, 0, 12, 8)})
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		ID:                   drillServerID,
		Localizer:            loc,
		RoundTimeout:         time.Second,
		Journal:              j,
		JournalSnapshotEvery: 2,
		Standby:              standby,
		Epoch:                epoch,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return &drillNode{srv: srv, j: j, ln: ln, addr: ln.Addr().String()}, nil
}

// stop shuts the node down and closes its journal.
func (n *drillNode) stop() error {
	n.srv.Shutdown()
	if err := n.j.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
		return err
	}
	return nil
}

// drillDriver holds the raw wire connections driving rounds against the
// current primary. Registration order is fixed (ap1, ap2, obj1) so every
// run appends session records identically.
type drillDriver struct {
	object net.Conn
	aps    [2]net.Conn
}

// dialDrill registers the driver connections against addr.
func dialDrill(addr string) (*drillDriver, error) {
	d := &drillDriver{}
	dial := func(h *wire.Hello) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if err := wire.WriteMessage(conn, h); err != nil {
			_ = conn.Close()
			return nil, err
		}
		if _, err := drillRead[*wire.HelloAck](conn); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("hello ack: %w", err)
		}
		return conn, nil
	}
	var err error
	for i, ap := range drillAPs {
		if d.aps[i], err = dial(&wire.Hello{Role: wire.RoleAP, ID: ap.id, Pos: ap.pos}); err != nil {
			d.close()
			return nil, err
		}
	}
	if d.object, err = dial(&wire.Hello{Role: wire.RoleObject, ID: "obj1"}); err != nil {
		d.close()
		return nil, err
	}
	return d, nil
}

// close drops whichever driver connections are open.
func (d *drillDriver) close() {
	for _, c := range d.aps {
		if c != nil {
			_ = c.Close()
		}
	}
	if d.object != nil {
		_ = d.object.Close()
	}
}

// drillRead reads one message of type T under a deadline so a dead
// server fails the drill instead of hanging it.
func drillRead[T wire.Message](conn net.Conn) (T, error) {
	var zero T
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return zero, err
	}
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		return zero, err
	}
	out, ok := msg.(T)
	if !ok {
		return zero, fmt.Errorf("got %q, want %T", msg.Type(), zero)
	}
	return out, nil
}

// drillReport builds AP i's report for a round: content is a pure
// function of (seed, round, AP), so a round redelivered after failover
// feeds the solver the exact bytes the golden run saw.
func drillReport(seed int64, roundID uint64, i int) *wire.CSIReport {
	ap := drillAPs[i]
	rng := rand.New(rand.NewSource(parallel.MixSeed(seed, drillStream+int64(i), int64(roundID))))
	vec := []complex128{
		complex(1+rng.Float64(), rng.Float64()),
		complex(rng.Float64(), 1+rng.Float64()),
	}
	return &wire.CSIReport{
		RoundID: roundID,
		APID:    ap.id,
		Pos:     ap.pos,
		Batch: csi.Batch{
			APID: ap.id,
			Samples: []csi.Sample{
				{APID: ap.id, Seq: 0, CSI: vec},
				{APID: ap.id, Seq: 1, CSI: vec},
			},
		},
	}
}

// driveRound runs one measurement round through the driver connections.
func (d *drillDriver) driveRound(seed int64, roundID uint64) error {
	if err := wire.WriteMessage(d.object, &wire.RoundStart{RoundID: roundID, ObjectID: "obj1", Packets: 2}); err != nil {
		return err
	}
	for _, ap := range d.aps {
		if _, err := drillRead[*wire.RoundStart](ap); err != nil {
			return err
		}
	}
	for i, ap := range d.aps {
		if err := wire.WriteMessage(ap, drillReport(seed, roundID, i)); err != nil {
			return err
		}
		if _, err := drillRead[*wire.ReportAck](ap); err != nil {
			return err
		}
	}
	if _, err := drillRead[*wire.Estimate](d.object); err != nil {
		return err
	}
	return nil
}

// printDrillEstimates writes the estimate stream to stdout, one line per
// round, in a fixed format both drill modes must reproduce byte for byte.
func printDrillEstimates(ests []wire.Estimate) {
	for _, e := range ests {
		fmt.Printf("estimate round=%d object=%s pos=(%.9g,%.9g) cost=%.9g anchors=%d\n",
			e.RoundID, e.ObjectID, e.Pos.X, e.Pos.Y, e.RelaxCost, e.NumAnchors)
	}
}

// waitCaught polls the sender until the standby has acknowledged every
// durable record, or the deadline passes.
func waitCaught(snd *replica.Sender, d time.Duration) error {
	deadline := time.Now().Add(d)
	for !snd.Caught() {
		if time.Now().After(deadline) {
			return fmt.Errorf("replication never caught up (acked %d)", snd.Acked())
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// runFailoverDrill runs the drill in one of two modes: "golden" (an
// uninterrupted single-primary run) or "kill" (primary dies mid-run,
// the standby drains, promotes, fences, and finishes). Both print the
// same estimate stream on stdout when given the same seed and rounds.
func runFailoverDrill(mode string, rounds int, seed int64) error {
	if rounds < 2 {
		return fmt.Errorf("failover drill needs at least 2 rounds, got %d", rounds)
	}
	narrate := log.New(os.Stderr, "drill: ", 0)
	primaryDir, err := os.MkdirTemp("", "nomloc-drill-primary-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(primaryDir)

	primary, err := startDrillNode(primaryDir, false, 1)
	if err != nil {
		return err
	}
	defer primary.stop()

	switch mode {
	case "golden":
		driver, err := dialDrill(primary.addr)
		if err != nil {
			return err
		}
		defer driver.close()
		for r := uint64(1); r <= uint64(rounds); r++ {
			if err := driver.driveRound(seed, r); err != nil {
				return fmt.Errorf("golden round %d: %w", r, err)
			}
		}
		narrate.Printf("golden run complete: %d rounds on one primary (seed %d)", rounds, seed)
		printDrillEstimates(primary.srv.Estimates())
		return primary.stop()

	case "kill":
		standbyDir, err := os.MkdirTemp("", "nomloc-drill-standby-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(standbyDir)
		standby, err := startDrillNode(standbyDir, true, 1)
		if err != nil {
			return err
		}
		defer standby.stop()

		live, err := replica.NewSender(replica.Config{
			Journal: primary.j, Addr: standby.addr, ServerID: drillServerID, Epoch: 1,
			Poll: time.Millisecond, Seed: seed,
		})
		if err != nil {
			return err
		}
		liveDone := make(chan error, 1)
		go func() { liveDone <- live.Run() }()

		driver, err := dialDrill(primary.addr)
		if err != nil {
			return err
		}
		half := uint64(rounds) / 2
		for r := uint64(1); r <= half; r++ {
			if err := driver.driveRound(seed, r); err != nil {
				driver.close()
				return fmt.Errorf("pre-failure round %d: %w", r, err)
			}
		}
		if err := waitCaught(live, 10*time.Second); err != nil {
			driver.close()
			return err
		}
		live.Close()
		<-liveDone

		// The primary dies. Drain whatever the live stream might have
		// missed straight off its journal directory — the post-mortem
		// step of the runbook — then promote.
		driver.close()
		if err := primary.stop(); err != nil {
			return err
		}
		narrate.Printf("primary killed after round %d; draining its journal into the standby", half)
		drain, err := replica.NewSender(replica.Config{
			Dir: primaryDir, Addr: standby.addr, ServerID: drillServerID, Epoch: 1,
			Poll: time.Millisecond, Seed: seed,
		})
		if err != nil {
			return err
		}
		drainDone := make(chan error, 1)
		go func() { drainDone <- drain.Run() }()
		if err := waitCaught(drain, 10*time.Second); err != nil {
			return err
		}
		drain.Close()
		<-drainDone

		epoch, err := standby.srv.Promote(0)
		if err != nil {
			return err
		}
		narrate.Printf("standby promoted at epoch %d", epoch)

		// A resurrected primary at the old epoch must be fenced.
		stale, err := replica.NewSender(replica.Config{
			Dir: primaryDir, Addr: standby.addr, ServerID: drillServerID, Epoch: 1,
			Poll: time.Millisecond, Seed: seed + 1,
		})
		if err != nil {
			return err
		}
		if err := stale.Run(); !errors.Is(err, replica.ErrFenced) {
			return fmt.Errorf("deposed primary was not fenced: %v", err)
		}
		narrate.Printf("deposed primary fenced (stale epoch 1 rejected)")

		driver, err = dialDrill(standby.addr)
		if err != nil {
			return err
		}
		defer driver.close()
		for r := half + 1; r <= uint64(rounds); r++ {
			if err := driver.driveRound(seed, r); err != nil {
				return fmt.Errorf("post-failover round %d: %w", r, err)
			}
		}
		narrate.Printf("run completed on the promoted standby (%d rounds total)", rounds)
		printDrillEstimates(standby.srv.Estimates())
		return standby.stop()

	default:
		return fmt.Errorf("unknown -failover-drill mode %q (want golden or kill)", mode)
	}
}
