module github.com/nomloc/nomloc

go 1.22
