// Command lobby runs the L-shaped Lobby scenario and highlights the
// non-convex handling: the area is decomposed into convex pieces, each
// piece is solved with its own virtual-AP boundary constraints, and the
// per-piece relaxation costs decide where the object is. It also sweeps
// the nomadic AP's position error (the paper's §V-E robustness study).
package main

import (
	"fmt"
	"log"

	nomloc "github.com/nomloc/nomloc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := nomloc.Lobby()
	if err != nil {
		return err
	}

	// Show the convex decomposition the localizer works with.
	loc, err := nomloc.NewLocalizer(nomloc.LocalizerConfig{Area: scn.Area})
	if err != nil {
		return err
	}
	fmt.Printf("Lobby area %.0f m² decomposes into %d convex pieces:\n",
		scn.Area.Area(), len(loc.Pieces()))
	for i, p := range loc.Pieces() {
		fmt.Printf("  piece %d: %v\n", i, p)
	}

	opt := nomloc.Options{PacketsPerSite: 20, TrialsPerSite: 4, WalkSteps: 10, Seed: 7}

	// Static vs nomadic across all twelve test sites.
	f8, err := nomloc.RunFig8(scn, opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nstatic : mean error %.2f m, SLV %.2f\n", f8.StaticMean, f8.StaticSLV)
	fmt.Printf("nomadic: mean error %.2f m, SLV %.2f\n", f8.NomadicMean, f8.NomadicSLV)

	// Robustness to nomadic position error (paper Fig. 10).
	f10, err := nomloc.RunFig10(scn, opt, []float64{0, 1, 2, 3})
	if err != nil {
		return err
	}
	fmt.Println("\nnomadic position error sweep (Fig. 10):")
	fmt.Println("ER(m)  median(m)  p90(m)")
	for i, er := range f10.ERs {
		med, err := f10.CDFs[i].Percentile(0.5)
		if err != nil {
			return err
		}
		p90, err := f10.CDFs[i].Percentile(0.9)
		if err != nil {
			return err
		}
		fmt.Printf("%5.0f  %9.2f  %6.2f\n", er, med, p90)
	}
	fmt.Println("\nSmall ER barely moves the curves: the SP method does not depend")
	fmt.Println("on precise AP coordinates the way range-based methods do (§V-E).")
	return nil
}
