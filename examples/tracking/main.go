// Command tracking localizes a moving object: a security-patrol walk
// through the Lab (one of the paper's motivating ILBS scenarios). At each
// step the object is localized under both deployments, demonstrating how
// the nomadic AP keeps accuracy consistent along the path — the "user
// experience inconsistency" fix in action.
package main

import (
	"fmt"
	"log"
	"math/rand"

	nomloc "github.com/nomloc/nomloc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := nomloc.Lab()
	if err != nil {
		return err
	}
	h, err := nomloc.NewHarness(scn, nomloc.Options{
		PacketsPerSite: 20,
		WalkSteps:      10,
		Seed:           99,
	})
	if err != nil {
		return err
	}

	// A patrol path through the room: straight segments sampled at 1 m.
	waypoints := []nomloc.Vec{
		nomloc.V(1.5, 1.5), nomloc.V(10.5, 1.5), nomloc.V(10.5, 6.5),
		nomloc.V(2.0, 6.5), nomloc.V(2.0, 2.5),
	}
	path := samplePath(waypoints, 1.0)

	// A constant-velocity Kalman filter smooths the raw per-step nomadic
	// estimates into a trajectory (1 m steps at walking speed ≈ 1 s/step).
	filter, err := nomloc.NewTrackFilter(nomloc.TrackConfig{
		ProcessNoise:   0.5,
		MeasurementStd: 2.0,
	})
	if err != nil {
		return err
	}

	rngS := rand.New(rand.NewSource(5))
	rngN := rand.New(rand.NewSource(5))
	fmt.Println("step  truth             static-err  nomadic-err  filtered-err")
	var sumS, sumN, sumF, maxS, maxN float64
	for i, p := range path {
		es, err := h.LocalizeOnce(p, nomloc.StaticDeployment, rngS)
		if err != nil {
			return fmt.Errorf("step %d static: %w", i, err)
		}
		en, err := h.LocalizeOnce(p, nomloc.NomadicDeployment, rngN)
		if err != nil {
			return fmt.Errorf("step %d nomadic: %w", i, err)
		}
		filtered, err := filter.Observe(en.Position, 1.0)
		if err != nil {
			return fmt.Errorf("step %d filter: %w", i, err)
		}
		ds := es.Position.Dist(p)
		dn := en.Position.Dist(p)
		df := filtered.Dist(p)
		sumS += ds
		sumN += dn
		sumF += df
		if ds > maxS {
			maxS = ds
		}
		if dn > maxN {
			maxN = dn
		}
		fmt.Printf("%4d  %-16v  %9.2f  %11.2f  %12.2f\n", i+1, p, ds, dn, df)
	}
	n := float64(len(path))
	fmt.Printf("\nmean error along the patrol: static %.2f m, nomadic %.2f m, filtered %.2f m\n",
		sumS/n, sumN/n, sumF/n)
	fmt.Printf("worst step:                  static %.2f m, nomadic %.2f m\n", maxS, maxN)
	return nil
}

// samplePath walks the waypoint polyline at the given spacing.
func samplePath(waypoints []nomloc.Vec, spacing float64) []nomloc.Vec {
	var out []nomloc.Vec
	for i := 0; i+1 < len(waypoints); i++ {
		a, b := waypoints[i], waypoints[i+1]
		segLen := a.Dist(b)
		steps := int(segLen / spacing)
		for s := 0; s < steps; s++ {
			t := float64(s) / float64(steps)
			out = append(out, a.Lerp(b, t))
		}
	}
	out = append(out, waypoints[len(waypoints)-1])
	return out
}
