// Command superres demonstrates the MUSIC super-resolution extension: on
// an NLOS link whose direct path and strongest reflection fall inside the
// same 50 ns IFFT tap, the classic power delay profile reports one merged
// arrival while MUSIC separates them and recovers each path's own power.
package main

import (
	"fmt"
	"log"

	nomloc "github.com/nomloc/nomloc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := nomloc.Lab()
	if err != nil {
		return err
	}
	sim, err := scn.Simulator()
	if err != nil {
		return err
	}
	radio := scn.Radio.Radio

	// Pick an NLOS link: a test site whose view of an AP is blocked.
	var tx, rx nomloc.Vec
	var desc string
	found := false
	for _, ap := range scn.AllAPsStatic() {
		for si, site := range scn.TestSites {
			if !scn.Env.HasLOS(site, ap.Pos) {
				tx, rx = site, ap.Pos
				desc = fmt.Sprintf("test site %d → %s (%.1f m, NLOS)", si+1, ap.ID, site.Dist(ap.Pos))
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return fmt.Errorf("no NLOS link in the scenario")
	}
	fmt.Println("link:", desc)

	// The physical ground truth from the simulator.
	fmt.Println("\ntrue propagation paths (simulator):")
	fmt.Println("kind       delay(ns)  gain(dB)  walls")
	for _, p := range sim.Paths(tx, rx) {
		fmt.Printf("%-9s  %9.1f  %8.1f  %5d\n", p.Kind, p.Delay*1e9, p.GainDB, p.WallsCrossed)
	}

	h := sim.Response(tx, rx)

	// Classic estimator: max tap of the IFFT power delay profile.
	power, tap, err := nomloc.DirectPathPower(h)
	if err != nil {
		return err
	}
	fmt.Printf("\nmax-tap PDP: %.3e at tap %d (±%.0f ns resolution — paths inside one tap merge)\n",
		power, tap, radio.DelayResolution()*1e9)

	// Super-resolution: MUSIC delays + least-squares powers.
	cfg := nomloc.MusicConfig{
		SubcarrierSpacing: radio.SubcarrierSpacing(),
		NumPaths:          3,
	}
	paths, err := nomloc.EstimatePathsMUSIC(h, cfg, radio.MaxUnambiguousDelay()/3, 1e-9)
	if err != nil {
		return err
	}
	fmt.Println("\nMUSIC-resolved paths (1 ns grid):")
	fmt.Println("delay(ns)  power")
	for _, p := range paths {
		fmt.Printf("%9.1f  %.3e\n", p.Delay*1e9, p.Power)
	}
	firstPower, delay, err := firstPath(h, cfg, radio)
	if err != nil {
		return err
	}
	fmt.Printf("\nsuper-resolved direct path: %.3e at %.1f ns\n", firstPower, delay*1e9)
	fmt.Println("\nThe direct path's own power — not the merged tap — is what the")
	fmt.Println("PDP proximity comparison ideally wants under NLOS (run the")
	fmt.Println("'pdp=music' ablation in cmd/nomloc-bench to see the system effect).")
	return nil
}

// firstPath wraps the facade call with the example's parameters.
func firstPath(h nomloc.CSIVector, cfg nomloc.MusicConfig, radio nomloc.CSIConfig) (float64, float64, error) {
	paths, err := nomloc.EstimatePathsMUSIC(h, cfg, radio.MaxUnambiguousDelay()/3, 1e-9)
	if err != nil {
		return 0, 0, err
	}
	strongest := 0.0
	for _, p := range paths {
		if p.Power > strongest {
			strongest = p.Power
		}
	}
	for _, p := range paths {
		if p.Power >= strongest/31.6 { // 15 dB dynamic range
			return p.Power, p.Delay, nil
		}
	}
	return paths[0].Power, paths[0].Delay, nil
}
