// Command quickstart is the smallest end-to-end NomLoc program: build the
// Lab scenario, localize one object under the static benchmark and under
// the nomadic deployment, and print both estimates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	nomloc "github.com/nomloc/nomloc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The Lab scenario digitizes the paper's Fig. 6(a): a cluttered
	// 12 m × 8 m machine room with four APs, one of them nomadic.
	scn, err := nomloc.Lab()
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	h, err := nomloc.NewHarness(scn, nomloc.Options{
		PacketsPerSite: 25, // probe packets per AP position
		WalkSteps:      10, // nomadic random-walk length
		Seed:           2014,
	})
	if err != nil {
		return fmt.Errorf("build harness: %w", err)
	}

	truth := nomloc.V(6.0, 4.5)
	fmt.Printf("object truly at %v\n\n", truth)

	rng := rand.New(rand.NewSource(1))
	static, err := h.LocalizeOnce(truth, nomloc.StaticDeployment, rng)
	if err != nil {
		return fmt.Errorf("static localization: %w", err)
	}
	fmt.Printf("static deployment:  estimate %v  error %.2f m (judgements %d, relax cost %.3f)\n",
		static.Position, static.Position.Dist(truth), static.NumJudgements, static.RelaxCost)

	nomadic, err := h.LocalizeOnce(truth, nomloc.NomadicDeployment, rng)
	if err != nil {
		return fmt.Errorf("nomadic localization: %w", err)
	}
	fmt.Printf("nomadic deployment: estimate %v  error %.2f m (judgements %d, relax cost %.3f)\n",
		nomadic.Position, nomadic.Position.Dist(truth), nomadic.NumJudgements, nomadic.RelaxCost)

	fmt.Println("\nThe nomadic AP's extra waypoints add constraint families that")
	fmt.Println("downscope the feasible region (paper §IV-B.3) — no calibration,")
	fmt.Println("no radio map, no propagation-model fitting.")
	return nil
}
