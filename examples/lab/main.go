// Command lab reproduces the Lab-scenario evaluation in one program: it
// localizes all ten test sites under both deployments and prints the
// per-site errors, the mean error, and the spatial localizability
// variance (SLV) — the paper's headline comparison, at small scale.
package main

import (
	"fmt"
	"log"

	nomloc "github.com/nomloc/nomloc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := nomloc.Lab()
	if err != nil {
		return err
	}
	h, err := nomloc.NewHarness(scn, nomloc.Options{
		PacketsPerSite: 20,
		TrialsPerSite:  5,
		WalkSteps:      10,
		Seed:           42,
	})
	if err != nil {
		return err
	}

	static, err := h.RunSites(nomloc.StaticDeployment)
	if err != nil {
		return fmt.Errorf("static run: %w", err)
	}
	nomadic, err := h.RunSites(nomloc.NomadicDeployment)
	if err != nil {
		return fmt.Errorf("nomadic run: %w", err)
	}

	fmt.Println("Lab scenario — per-site mean localization error (m)")
	fmt.Println("site  position          static  nomadic")
	for i := range static {
		fmt.Printf("%4d  %-16v  %6.2f  %7.2f\n",
			i+1, static[i].Site, static[i].MeanError, nomadic[i].MeanError)
	}

	se := nomloc.MeanErrors(static)
	ne := nomloc.MeanErrors(nomadic)
	fmt.Printf("\nmean error:  static %.2f m   nomadic %.2f m\n", mean(se), mean(ne))
	fmt.Printf("SLV (Eq.22): static %.2f     nomadic %.2f\n", nomloc.SLV(se), nomloc.SLV(ne))

	// PDP proximity accuracy (paper Fig. 7).
	prox, err := h.ProximityAccuracy()
	if err != nil {
		return fmt.Errorf("proximity: %w", err)
	}
	fmt.Println("\nPDP proximity accuracy per site (Fig. 7):")
	for i, p := range prox {
		fmt.Printf("%4d  %.0f%%\n", i+1, 100*p.Accuracy())
	}
	return nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
