// Command heatmap renders localizability maps — the measurable version of
// the paper's Fig. 1 — for the Lab under both deployments. Where the
// static deployment leaves blind spots ('#', errors ≥ 4 m), the nomadic
// deployment evens the map out; the map-wide SLV quantifies it.
package main

import (
	"fmt"
	"log"

	nomloc "github.com/nomloc/nomloc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := nomloc.Lab()
	if err != nil {
		return err
	}
	h, err := nomloc.NewHarness(scn, nomloc.Options{
		PacketsPerSite: 15,
		WalkSteps:      10,
		Seed:           11,
	})
	if err != nil {
		return err
	}

	const (
		spacing = 1.0
		trials  = 2
	)
	for _, mode := range []nomloc.DeploymentMode{nomloc.StaticDeployment, nomloc.NomadicDeployment} {
		m, err := h.RunLocalizabilityMap(mode, spacing, trials)
		if err != nil {
			return fmt.Errorf("%v map: %w", mode, err)
		}
		worstAt, worst := m.WorstPoint()
		fmt.Printf("%s deployment (%d grid points):\n%s", mode, len(m.Points), m.ASCII())
		fmt.Printf("mean %.2f m | SLV %.2f | worst %.2f m at %v\n\n",
			m.MeanError(), m.SLV(), worst, worstAt)
	}
	fmt.Println("The nomadic map should show fewer '#'/'O' cells and a lower SLV:")
	fmt.Println("mobility fills in the blind spots that a fixed deployment cannot.")
	return nil
}
