// Command distributed runs the full three-tier NomLoc system (paper
// Fig. 2) as real networked processes-in-miniature on localhost TCP: a
// localization server, four AP agents (AP1 nomadic), and an object agent
// that transmits probe bursts. Estimates stream back as the nomadic AP
// accumulates waypoints round by round.
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	nomloc "github.com/nomloc/nomloc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := nomloc.Lab()
	if err != nil {
		return err
	}
	loc, err := nomloc.NewLocalizer(nomloc.LocalizerConfig{Area: scn.Area})
	if err != nil {
		return err
	}

	// --- Tier 3: the localization server ---
	srv, err := nomloc.NewServer(nomloc.ServerConfig{
		ID:           "nomloc-demo",
		Localizer:    loc,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ln); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	addr := ln.Addr().String()
	fmt.Printf("localization server on %s\n", addr)

	// --- Tier 2: the access points ---
	var aps []*nomloc.APAgent
	for i, ap := range scn.StaticAPs {
		a, err := nomloc.DialAP(nomloc.APConfig{
			ID:         ap.ID,
			ServerAddr: addr,
			Sites:      []nomloc.Vec{ap.Pos},
			Seed:       int64(i + 1),
		})
		if err != nil {
			return fmt.Errorf("dial %s: %w", ap.ID, err)
		}
		aps = append(aps, a)
		fmt.Printf("static AP %s at %v\n", ap.ID, ap.Pos)
	}
	nomadic, err := nomloc.DialAP(nomloc.APConfig{
		ID:         scn.Nomadic.ID,
		ServerAddr: addr,
		Sites:      scn.Nomadic.AllSites(),
		Nomadic:    true,
		Seed:       77,
	})
	if err != nil {
		return fmt.Errorf("dial nomadic: %w", err)
	}
	aps = append(aps, nomadic)
	fmt.Printf("nomadic AP %s, home %v, %d waypoints\n",
		scn.Nomadic.ID, scn.Nomadic.Home, len(scn.Nomadic.Waypoints))
	for _, a := range aps {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Run(); err != nil && !isClosed(err) {
				log.Printf("ap: %v", err)
			}
		}()
	}

	// --- Tier 1: the object ---
	sim, err := scn.Simulator()
	if err != nil {
		return err
	}
	truth := nomloc.V(6.0, 4.5)
	obj, err := nomloc.DialObject(nomloc.ObjectConfig{
		ID:         "visitor-1",
		ServerAddr: addr,
		Pos:        truth,
		Sim:        sim,
		Packets:    20,
		Seed:       3,
	})
	if err != nil {
		return fmt.Errorf("dial object: %w", err)
	}
	for _, ap := range scn.AllAPsStatic() {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := obj.Run(); err != nil && !isClosed(err) {
			log.Printf("object: %v", err)
		}
	}()

	// --- Measurement rounds ---
	fmt.Printf("\nobject truly at %v; running 6 rounds\n", truth)
	fmt.Println("round  estimate          error(m)  anchors  relax-cost")
	for r := uint64(1); r <= 6; r++ {
		est, err := obj.RunRound(r)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		fmt.Printf("%5d  %-16v  %8.2f  %7d  %10.3f\n",
			r, est.Pos, est.Pos.Dist(truth), est.NumAnchors, est.RelaxCost)
	}
	fmt.Println("\nanchor count grows as the nomadic AP visits new waypoints;")
	fmt.Println("the estimate tightens without any calibration.")

	// --- Orderly shutdown ---
	obj.Close()
	for _, a := range aps {
		a.Close()
	}
	srv.Shutdown()
	wg.Wait()
	return nil
}

// isClosed reports the expected shutdown reason of an agent loop.
func isClosed(err error) bool { return errors.Is(err, nomloc.ErrAgentClosed) }
